(* Fault-free behaviour of the sticky register (Algorithm 2):
   Definition 15 and Observations 16-18 with all processes correct. *)

module Sys = Lnd_sticky.System
module Sched = Lnd_runtime.Sched
module Policy = Lnd_runtime.Policy

let run_ok ?(max_steps = 2_000_000) (t : Sys.t) =
  match Sys.run ~max_steps t with
  | Sched.Quiescent ->
      (match Sched.failures t.sched with
      | [] -> ()
      | (f, e) :: _ ->
          Alcotest.failf "fiber %s failed: %s" f.Sched.fname
            (Printexc.to_string e))
  | Sched.Budget_exhausted -> Alcotest.fail "step budget exhausted"
  | Sched.Condition_met -> ()

let vopt = Alcotest.(option string)

(* VALIDITY (Observation 16): after WRITE(v) completes, every read
   returns v. *)
let test_write_then_read ~n ~f ~seed () =
  let t = Sys.make ~policy:(Policy.random ~seed) ~n ~f () in
  ignore (Sys.client t ~pid:0 ~name:"writer" (fun () -> Sys.op_write t "v"));
  run_ok t;
  for pid = 1 to n - 1 do
    let got = ref None in
    ignore
      (Sys.client t ~pid ~name:(Printf.sprintf "r%d" pid) (fun () ->
           got := Sys.op_read t ~pid));
    run_ok t;
    Alcotest.check vopt (Printf.sprintf "read at p%d" pid) (Some "v") !got
  done

(* A read with no write returns ⊥. *)
let test_read_bot () =
  let t = Sys.make ~n:4 ~f:1 () in
  let got = ref (Some "x") in
  ignore
    (Sys.client t ~pid:1 ~name:"r1" (fun () -> got := Sys.op_read t ~pid:1));
  run_ok t;
  Alcotest.check vopt "read of unwritten register" None !got

(* Stickiness: a second WRITE does not change the value. *)
let test_second_write_ignored () =
  let t = Sys.make ~n:4 ~f:1 () in
  ignore
    (Sys.client t ~pid:0 ~name:"writer" (fun () ->
         Sys.op_write t "first";
         Sys.op_write t "second"));
  run_ok t;
  let got = ref None in
  ignore
    (Sys.client t ~pid:2 ~name:"r2" (fun () -> got := Sys.op_read t ~pid:2));
  run_ok t;
  Alcotest.check vopt "sticky keeps first value" (Some "first") !got

(* UNIQUENESS (Observation 18): concurrent reads under many schedules
   agree — never two different non-⊥ values. *)
let test_uniqueness_concurrent ~seed () =
  let n = 4 and f = 1 in
  let t = Sys.make ~policy:(Policy.random ~seed) ~n ~f () in
  let results = Array.make n None in
  ignore (Sys.client t ~pid:0 ~name:"writer" (fun () -> Sys.op_write t "u"));
  for pid = 1 to n - 1 do
    ignore
      (Sys.client t ~pid ~name:(Printf.sprintf "r%d" pid) (fun () ->
           results.(pid) <- Sys.op_read t ~pid))
  done;
  run_ok t;
  let non_bot = Array.to_list results |> List.filter_map (fun x -> x) in
  List.iter
    (fun v -> Alcotest.(check string) "all non-⊥ reads agree" "u" v)
    non_bot;
  Alcotest.(check bool)
    "history linearizable (correct writer)" true
    (Sys.byz_linearizable t)

(* Reads racing the write may see ⊥ or v, but the recorded history must be
   linearizable: no ⊥-read after a v-read. *)
let test_linearizable_race ~seed () =
  let n = 7 and f = 2 in
  let t = Sys.make ~policy:(Policy.random ~seed) ~n ~f () in
  ignore (Sys.client t ~pid:0 ~name:"writer" (fun () -> Sys.op_write t "w"));
  for pid = 1 to 4 do
    ignore
      (Sys.client t ~pid ~name:(Printf.sprintf "r%d" pid) (fun () ->
           ignore (Sys.op_read t ~pid);
           ignore (Sys.op_read t ~pid)))
  done;
  run_ok t;
  Alcotest.(check bool) "linearizable" true (Sys.byz_linearizable t)

let test_termination_sizes () =
  List.iter
    (fun (n, f) ->
      let t = Sys.make ~policy:(Policy.random ~seed:(n * 31)) ~n ~f () in
      ignore
        (Sys.client t ~pid:0 ~name:"writer" (fun () -> Sys.op_write t "v"));
      for pid = 1 to min 4 (n - 1) do
        ignore
          (Sys.client t ~pid ~name:(Printf.sprintf "r%d" pid) (fun () ->
               ignore (Sys.op_read t ~pid)))
      done;
      run_ok ~max_steps:5_000_000 t)
    [ (4, 1); (7, 2); (10, 3); (13, 4) ]

let tests =
  [
    Alcotest.test_case "write then read n=4" `Quick
      (test_write_then_read ~n:4 ~f:1 ~seed:1);
    Alcotest.test_case "write then read n=7" `Quick
      (test_write_then_read ~n:7 ~f:2 ~seed:2);
    Alcotest.test_case "write then read n=10" `Quick
      (test_write_then_read ~n:10 ~f:3 ~seed:3);
    Alcotest.test_case "read of unwritten is bot" `Quick test_read_bot;
    Alcotest.test_case "second write ignored" `Quick
      test_second_write_ignored;
    Alcotest.test_case "uniqueness under race (seed 4)" `Quick
      (test_uniqueness_concurrent ~seed:4);
    Alcotest.test_case "uniqueness under race (seed 5)" `Quick
      (test_uniqueness_concurrent ~seed:5);
    Alcotest.test_case "uniqueness under race (seed 6)" `Quick
      (test_uniqueness_concurrent ~seed:6);
    Alcotest.test_case "linearizable race (seed 7)" `Quick
      (test_linearizable_race ~seed:7);
    Alcotest.test_case "linearizable race (seed 8)" `Quick
      (test_linearizable_race ~seed:8);
    Alcotest.test_case "termination across sizes" `Slow
      test_termination_sizes;
  ]
