(* The signature-based baseline verifiable register: same observable
   properties as Algorithm 1 (validity, unforgeability, relay) but bought
   with the signature assumption instead of witness quorums. *)

open Lnd_support
open Lnd_shm
open Lnd_runtime
module Sv = Lnd_sigbase.Sig_verifiable
module O = Lnd_crypto.Sigoracle

type sys = {
  sched : Sched.t;
  regs : Sv.regs;
  writer : Sv.writer;
}

let mk ?(n = 4) ?(f = 1) ?(seed = 3) () : sys =
  let space = Space.create ~n in
  let sched = Sched.create ~space ~choose:(Policy.random ~seed) in
  let oracle = O.create () in
  let regs = Sv.alloc space { Sv.n; f } ~oracle in
  { sched; regs; writer = Sv.writer regs }

let run_ok s =
  match Sched.run ~max_steps:1_000_000 s.sched with
  | Sched.Quiescent ->
      (match Sched.failures s.sched with
      | [] -> ()
      | ((f : Sched.fiber), e) :: _ ->
          Alcotest.failf "fiber %s failed: %s" f.Sched.fname
            (Printexc.to_string e))
  | _ -> Alcotest.fail "run did not quiesce"

let test_validity () =
  let s = mk () in
  ignore
    (Sched.spawn s.sched ~pid:0 ~name:"writer" (fun () ->
         Sv.write s.writer "a";
         Alcotest.(check bool) "sign succeeds" true (Sv.sign s.writer "a")));
  run_ok s;
  let r = ref false in
  ignore
    (Sched.spawn s.sched ~pid:1 ~name:"verifier" (fun () ->
         r := Sv.verify (Sv.reader s.regs ~pid:1) "a"));
  run_ok s;
  Alcotest.(check bool) "validity" true !r

let test_sign_unwritten_fails () =
  let s = mk () in
  ignore
    (Sched.spawn s.sched ~pid:0 ~name:"writer" (fun () ->
         Alcotest.(check bool) "fail" false (Sv.sign s.writer "never")));
  run_ok s

let test_unforgeability () =
  let s = mk () in
  (* a Byzantine reader plants a FORGED certificate in its own register *)
  ignore
    (Sched.spawn s.sched ~pid:3 ~name:"byz" (fun () ->
         let fake = O.forge ~signer:0 ~msg:"evil" in
         Sched.write s.regs.Sv.certs.(3)
           (Univ.inj Sv.cert_key [ ("evil", fake) ])));
  let r = ref true in
  ignore
    (Sched.spawn s.sched ~pid:1 ~name:"verifier" (fun () ->
         r := Sv.verify (Sv.reader s.regs ~pid:1) "evil"));
  run_ok s;
  Alcotest.(check bool) "forged cert rejected" false !r

(* The title scenario with signatures: the Byzantine writer signs, a
   correct reader verifies (and relays the certificate), then the writer
   erases its certificate register. Later verifies still succeed. *)
let test_lie_but_not_deny_with_signatures () =
  let s = mk () in
  (* Byzantine writer: writes + signs properly... *)
  ignore
    (Sched.spawn s.sched ~pid:0 ~name:"byz-writer" (fun () ->
         Sv.write s.writer "lie";
         ignore (Sv.sign s.writer "lie")));
  run_ok s;
  let first = ref false in
  ignore
    (Sched.spawn s.sched ~pid:1 ~name:"v1" (fun () ->
         first := Sv.verify (Sv.reader s.regs ~pid:1) "lie"));
  run_ok s;
  Alcotest.(check bool) "first verify true" true !first;
  (* ... then denies: erases its own certificate register *)
  ignore
    (Sched.spawn s.sched ~pid:0 ~name:"byz-denies" (fun () ->
         Sched.write s.regs.Sv.certs.(0) (Univ.inj Sv.cert_key [])));
  run_ok s;
  let later = ref false in
  ignore
    (Sched.spawn s.sched ~pid:2 ~name:"v2" (fun () ->
         later := Sv.verify (Sv.reader s.regs ~pid:2) "lie"));
  run_ok s;
  Alcotest.(check bool) "RELAY: denial fails — certificate was relayed" true
    !later

let test_verify_unsigned_false () =
  let s = mk () in
  let r = ref true in
  ignore
    (Sched.spawn s.sched ~pid:2 ~name:"v" (fun () ->
         r := Sv.verify (Sv.reader s.regs ~pid:2) "nothing"));
  run_ok s;
  Alcotest.(check bool) "unsigned false" false !r

(* Cost sanity: a verify is a single O(n) scan — no rounds, unlike
   Algorithm 1. *)
let test_cost_shape () =
  let n = 7 in
  let space = Space.create ~n in
  let sched = Sched.create ~space ~choose:(Policy.round_robin ()) in
  let oracle = O.create () in
  let regs = Sv.alloc space { Sv.n; f = 3 } ~oracle in
  let writer = Sv.writer regs in
  ignore
    (Sched.spawn sched ~pid:0 ~name:"w" (fun () ->
         Sv.write writer "a";
         ignore (Sv.sign writer "a")));
  ignore (Sched.run sched);
  let before = Space.stats space in
  ignore
    (Sched.spawn sched ~pid:1 ~name:"v" (fun () ->
         ignore (Sv.verify (Sv.reader regs ~pid:1) "a")));
  ignore (Sched.run sched);
  let d = Space.diff ~before ~after:(Space.stats space) in
  Alcotest.(check bool)
    (Printf.sprintf "verify cost is <= n+2 accesses (got %d reads, %d writes)"
       d.Space.reads d.Space.writes)
    true
    (d.Space.reads + d.Space.writes <= n + 2)

let tests =
  [
    Alcotest.test_case "validity" `Quick test_validity;
    Alcotest.test_case "sign unwritten fails" `Quick test_sign_unwritten_fails;
    Alcotest.test_case "unforgeability (forged cert)" `Quick
      test_unforgeability;
    Alcotest.test_case "lie-but-not-deny with signatures" `Quick
      test_lie_but_not_deny_with_signatures;
    Alcotest.test_case "verify unsigned false" `Quick
      test_verify_unsigned_false;
    Alcotest.test_case "verify cost shape" `Quick test_cost_shape;
  ]
