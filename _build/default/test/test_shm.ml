(* Unit tests for the shared-memory model: ownership and readability
   enforcement — the model's only restriction on Byzantine processes. *)

open Lnd_support
open Lnd_shm

let mk () = Space.create ~n:4

let test_read_write () =
  let sp = mk () in
  let r = Space.alloc sp ~name:"r" ~owner:0 ~init:(Univ.inj Univ.int 0) () in
  Alcotest.(check (option int))
    "initial" (Some 0)
    (Univ.prj Univ.int (Space.read sp ~by:1 r));
  Space.write sp ~by:0 r (Univ.inj Univ.int 5);
  Alcotest.(check (option int))
    "after write" (Some 5)
    (Univ.prj Univ.int (Space.read sp ~by:2 r))

let test_write_port_enforced () =
  let sp = mk () in
  let r = Space.alloc sp ~name:"r" ~owner:0 ~init:(Univ.inj Univ.int 0) () in
  Alcotest.check_raises "non-owner write rejected"
    (Space.Permission_violation { pid = 1; reg = "r"; op = "write" })
    (fun () -> Space.write sp ~by:1 r (Univ.inj Univ.int 9))

let test_swsr_readability () =
  let sp = mk () in
  let r =
    Space.alloc sp ~name:"r01" ~owner:0 ~single_reader:1
      ~init:(Univ.inj Univ.int 0) ()
  in
  (* designated reader and owner may read *)
  ignore (Space.read sp ~by:1 r);
  ignore (Space.read sp ~by:0 r);
  Alcotest.check_raises "other reader rejected"
    (Space.Permission_violation { pid = 2; reg = "r01"; op = "read" })
    (fun () -> ignore (Space.read sp ~by:2 r))

let test_counters () =
  let sp = mk () in
  let r = Space.alloc sp ~name:"r" ~owner:0 ~init:(Univ.inj Univ.int 0) () in
  let before = Space.stats sp in
  ignore (Space.read sp ~by:1 r);
  ignore (Space.read sp ~by:2 r);
  Space.write sp ~by:0 r (Univ.inj Univ.int 1);
  let d = Space.diff ~before ~after:(Space.stats sp) in
  Alcotest.(check int) "reads counted" 2 d.Space.reads;
  Alcotest.(check int) "writes counted" 1 d.Space.writes;
  Alcotest.(check int) "per-pid reads" 1 (Space.stats_of_pid sp 1).Space.reads

let test_owned () =
  let sp = mk () in
  let _a = Space.alloc sp ~name:"a" ~owner:0 ~init:(Univ.inj Univ.int 0) () in
  let _b = Space.alloc sp ~name:"b" ~owner:1 ~init:(Univ.inj Univ.int 0) () in
  let _c = Space.alloc sp ~name:"c" ~owner:0 ~init:(Univ.inj Univ.int 0) () in
  Alcotest.(check int) "owned by 0" 2 (List.length (Space.owned sp ~pid:0));
  Alcotest.(check int) "owned by 1" 1 (List.length (Space.owned sp ~pid:1))

let test_bad_owner () =
  let sp = mk () in
  Alcotest.check_raises "bad owner" (Invalid_argument "Space.alloc: bad owner")
    (fun () ->
      ignore (Space.alloc sp ~name:"x" ~owner:9 ~init:(Univ.inj Univ.int 0) ()))

let test_trace_ring () =
  let sp = mk () in
  Space.set_trace sp ~capacity:3;
  let r = Space.alloc sp ~name:"r" ~owner:0 ~init:(Univ.inj Univ.int 0) () in
  Space.write sp ~by:0 r (Univ.inj Univ.int 1);
  ignore (Space.read sp ~by:1 r);
  Space.write sp ~by:0 r (Univ.inj Univ.int 2);
  ignore (Space.read sp ~by:2 r);
  (* capacity 3: the first access fell off the ring *)
  let tr = Space.trace sp in
  Alcotest.(check int) "ring keeps last 3" 3 (List.length tr);
  (match tr with
  | [ a; b; c ] ->
      Alcotest.(check int) "oldest seq" 1 a.Space.acc_seq;
      Alcotest.(check bool) "b is a write" true (b.Space.acc_kind = `Write);
      Alcotest.(check int) "newest pid" 2 c.Space.acc_pid
  | _ -> Alcotest.fail "unexpected trace shape");
  (* pretty-printing does not raise *)
  List.iter (fun a -> ignore (Format.asprintf "%a" Space.pp_access a)) tr

let test_trace_disabled_by_default () =
  let sp = mk () in
  let r = Space.alloc sp ~name:"r" ~owner:0 ~init:(Univ.inj Univ.int 0) () in
  Space.write sp ~by:0 r (Univ.inj Univ.int 1);
  Alcotest.(check int) "no trace unless enabled" 0
    (List.length (Space.trace sp))

let tests =
  [
    Alcotest.test_case "read/write" `Quick test_read_write;
    Alcotest.test_case "trace ring" `Quick test_trace_ring;
    Alcotest.test_case "trace disabled by default" `Quick
      test_trace_disabled_by_default;
    Alcotest.test_case "write port enforced" `Quick test_write_port_enforced;
    Alcotest.test_case "SWSR readability" `Quick test_swsr_readability;
    Alcotest.test_case "access counters" `Quick test_counters;
    Alcotest.test_case "owned registers" `Quick test_owned;
    Alcotest.test_case "bad owner rejected" `Quick test_bad_owner;
  ]
