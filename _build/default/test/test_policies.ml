(* Both algorithms under every scheduling policy: the theorems hold for
   all fair schedules, so round-robin, seeded-random, and biased-random
   (slow processes) runs must all satisfy the same properties. Plus a
   long mixed soak test. *)

open Lnd_runtime
module VSys = Lnd_verifiable.System
module SSys = Lnd_sticky.System

let policies =
  [
    ("round-robin", fun () -> Policy.round_robin ());
    ("random", fun () -> Policy.random ~seed:77);
    ( "biased (slow p1,p2)",
      fun () -> Policy.random_biased ~seed:78 ~slow:[ 1; 2 ] ~penalty:4 );
  ]

let run_ok name sched ~max_steps =
  match Sched.run ~max_steps sched with
  | Sched.Quiescent -> ()
  | Sched.Budget_exhausted -> Alcotest.failf "%s: budget exhausted" name
  | Sched.Condition_met -> ()

let test_verifiable_under_policy (pname, mk_policy) () =
  let n = 4 and f = 1 in
  let t = VSys.make ~policy:(mk_policy ()) ~n ~f () in
  ignore
    (VSys.client t ~pid:0 ~name:"w" (fun () ->
         VSys.op_write t "p";
         ignore (VSys.op_sign t "p")));
  for pid = 1 to n - 1 do
    ignore
      (VSys.client t ~pid ~name:(Printf.sprintf "v%d" pid) (fun () ->
           ignore (VSys.op_verify t ~pid "p")))
  done;
  run_ok pname t.sched ~max_steps:4_000_000;
  Alcotest.(check bool)
    (Printf.sprintf "linearizable under %s" pname)
    true (VSys.byz_linearizable t)

let test_sticky_under_policy (pname, mk_policy) () =
  let n = 4 and f = 1 in
  let t = SSys.make ~policy:(mk_policy ()) ~n ~f () in
  ignore (SSys.client t ~pid:0 ~name:"w" (fun () -> SSys.op_write t "p"));
  for pid = 1 to n - 1 do
    ignore
      (SSys.client t ~pid ~name:(Printf.sprintf "r%d" pid) (fun () ->
           ignore (SSys.op_read t ~pid)))
  done;
  run_ok pname t.sched ~max_steps:4_000_000;
  Alcotest.(check bool)
    (Printf.sprintf "linearizable under %s" pname)
    true (SSys.byz_linearizable t)

(* Soak: n=7 with a denying Byzantine writer and a flip-flopping
   colluder; 5 readers each perform a long mixed program. Monitors must
   accept the whole (large) history and everything must terminate. *)
let test_soak () =
  let n = 7 and f = 2 in
  let t =
    VSys.make ~policy:(Policy.random ~seed:404) ~n ~f ~byzantine:[ 0; 6 ] ()
  in
  ignore
    (Lnd_byz.Byz_verifiable.spawn_denying_writer t.sched t.regs ~v:"soak"
       ~deny_after:5 ());
  ignore
    (Lnd_byz.Byz_verifiable.spawn_flipflop t.sched t.regs ~pid:6 ~v:"soak");
  for pid = 1 to 5 do
    ignore
      (VSys.client t ~pid ~name:(Printf.sprintf "r%d" pid) (fun () ->
           for _ = 1 to 6 do
             ignore (VSys.op_verify t ~pid "soak");
             ignore (VSys.op_read t ~pid)
           done))
  done;
  run_ok "soak" t.sched ~max_steps:30_000_000;
  let correct pid = t.correct.(pid) in
  match
    Lnd_history.Monitors.check_all
      (Lnd_history.Monitors.relay ~correct t.history
      @ Lnd_history.Monitors.validity ~correct t.history)
  with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "soak monitor violation: %s" msg

let tests =
  List.map
    (fun p ->
      Alcotest.test_case
        (Printf.sprintf "verifiable under %s" (fst p))
        `Quick
        (test_verifiable_under_policy p))
    policies
  @ List.map
      (fun p ->
        Alcotest.test_case
          (Printf.sprintf "sticky under %s" (fst p))
          `Quick
          (test_sticky_under_policy p))
      policies
  @ [ Alcotest.test_case "soak: 60 ops vs denying+flip-flop" `Slow test_soak ]
