(* Unit tests for the simulated signature oracle: the three axioms of
   unforgeable signatures (footnote 1 of the paper). *)

module O = Lnd_crypto.Sigoracle

let test_sign_verify () =
  let o = O.create () in
  let s = O.sign o ~by:3 "hello" in
  Alcotest.(check bool) "valid" true (O.verify o ~signer:3 ~msg:"hello" s)

let test_wrong_signer () =
  let o = O.create () in
  let s = O.sign o ~by:3 "hello" in
  Alcotest.(check bool)
    "claimed signer mismatch" false
    (O.verify o ~signer:2 ~msg:"hello" s)

let test_wrong_message () =
  let o = O.create () in
  let s = O.sign o ~by:3 "hello" in
  Alcotest.(check bool)
    "message mismatch" false
    (O.verify o ~signer:3 ~msg:"bye" s)

let test_forgery_rejected () =
  let o = O.create () in
  ignore (O.sign o ~by:3 "hello");
  let fake = O.forge ~signer:3 ~msg:"hello" in
  Alcotest.(check bool) "forgery rejected" false
    (O.verify o ~signer:3 ~msg:"hello" fake)

let test_transferable () =
  (* axiom 3: a relayed signature object still verifies for anyone *)
  let o = O.create () in
  let s = O.sign o ~by:1 "m" in
  let relayed = s in
  Alcotest.(check bool) "relayed still valid" true
    (O.verify o ~signer:1 ~msg:"m" relayed)

let test_distinct_tokens () =
  let o = O.create () in
  let s1 = O.sign o ~by:1 "m" and s2 = O.sign o ~by:1 "m" in
  Alcotest.(check bool)
    "re-signing yields distinct tokens" true
    (s1.O.token <> s2.O.token);
  Alcotest.(check bool) "both valid" true
    (O.verify o ~signer:1 ~msg:"m" s1 && O.verify o ~signer:1 ~msg:"m" s2)

let tests =
  [
    Alcotest.test_case "sign/verify" `Quick test_sign_verify;
    Alcotest.test_case "wrong signer" `Quick test_wrong_signer;
    Alcotest.test_case "wrong message" `Quick test_wrong_message;
    Alcotest.test_case "forgery rejected" `Quick test_forgery_rejected;
    Alcotest.test_case "transferable" `Quick test_transferable;
    Alcotest.test_case "distinct tokens" `Quick test_distinct_tokens;
  ]
