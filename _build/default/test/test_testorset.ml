(* Test-or-set from sticky and from verifiable registers (Observation 25):
   Observation 21 properties plus Byzantine linearizability, with correct
   and Byzantine setters. *)

module Tos = Lnd_testorset.Testorset
module Sched = Lnd_runtime.Sched
module Policy = Lnd_runtime.Policy

let run_ok ?(max_steps = 4_000_000) (t : Tos.t) =
  match Tos.run ~max_steps t with
  | Sched.Quiescent ->
      List.iter
        (fun ((f : Sched.fiber), e) ->
          if t.correct.(f.Sched.pid) then
            Alcotest.failf "correct fiber %s failed: %s" f.Sched.fname
              (Printexc.to_string e))
        (Sched.failures t.sched)
  | Sched.Budget_exhausted -> Alcotest.fail "step budget exhausted"
  | Sched.Condition_met -> ()

let impl_name = function
  | Tos.Sticky_based -> "sticky"
  | Tos.Verifiable_based -> "verifiable"

(* TEST before any SET returns 0. *)
let test_unset impl () =
  let t = Tos.make ~impl ~n:4 ~f:1 () in
  let r = ref 1 in
  ignore (Tos.client t ~pid:1 ~name:"test" (fun () -> r := Tos.op_test t ~pid:1));
  run_ok t;
  Alcotest.(check int) "test before set" 0 !r

(* SET then TEST returns 1 for every tester (Observation 21(1)). *)
let test_set_then_test impl ~n ~f ~seed () =
  let t = Tos.make ~policy:(Policy.random ~seed) ~impl ~n ~f () in
  ignore (Tos.client t ~pid:0 ~name:"set" (fun () -> Tos.op_set t));
  run_ok t;
  for pid = 1 to n - 1 do
    let r = ref 0 in
    ignore
      (Tos.client t ~pid ~name:(Printf.sprintf "test%d" pid) (fun () ->
           r := Tos.op_test t ~pid));
    run_ok t;
    Alcotest.(check int) (Printf.sprintf "test at p%d after set" pid) 1 !r
  done;
  Alcotest.(check bool) "linearizable" true (Tos.byz_linearizable t)

(* Concurrent SET and TESTs: results are 0/1 and the history linearizes;
   relay (Observation 21(3)) holds by interval order. *)
let test_concurrent impl ~seed () =
  let n = 4 and f = 1 in
  let t = Tos.make ~policy:(Policy.random ~seed) ~impl ~n ~f () in
  ignore (Tos.client t ~pid:0 ~name:"set" (fun () -> Tos.op_set t));
  for pid = 1 to n - 1 do
    ignore
      (Tos.client t ~pid ~name:(Printf.sprintf "test%d" pid) (fun () ->
           ignore (Tos.op_test t ~pid);
           ignore (Tos.op_test t ~pid)))
  done;
  run_ok t;
  Alcotest.(check bool) "linearizable" true (Tos.byz_linearizable t)

(* A Byzantine setter (equivocating writer underneath) cannot make correct
   testers disagree in a non-linearizable way. *)
let test_byz_setter impl ~seed () =
  let n = 4 and f = 1 in
  let t =
    Tos.make ~policy:(Policy.random ~seed) ~impl ~n ~f ~byzantine:[ 0 ] ()
  in
  (match t.backend with
  | Tos.B_sticky (regs, _, _) ->
      ignore
        (Lnd_byz.Byz_sticky.spawn_equivocating_writer t.sched regs ~va:"1"
           ~vb:"evil" ~flip_after:2 ())
  | Tos.B_verifiable (regs, _, _) ->
      ignore
        (Lnd_byz.Byz_verifiable.spawn_denying_writer t.sched regs ~v:"1"
           ~deny_after:2 ()));
  for pid = 1 to n - 1 do
    ignore
      (Tos.client t ~pid ~name:(Printf.sprintf "test%d" pid) (fun () ->
           ignore (Tos.op_test t ~pid);
           ignore (Tos.op_test t ~pid)))
  done;
  run_ok t;
  Alcotest.(check bool)
    "linearizable with Byzantine setter" true (Tos.byz_linearizable t)

let for_both name mk =
  List.map
    (fun impl ->
      Alcotest.test_case (Printf.sprintf "%s (%s)" name (impl_name impl)) `Quick
        (mk impl))
    [ Tos.Sticky_based; Tos.Verifiable_based ]

let tests =
  List.concat
    [
      for_both "test before set" (fun impl -> test_unset impl);
      for_both "set then test n=4" (fun impl ->
          test_set_then_test impl ~n:4 ~f:1 ~seed:1);
      for_both "set then test n=7" (fun impl ->
          test_set_then_test impl ~n:7 ~f:2 ~seed:2);
      for_both "concurrent set/test (seed 3)" (fun impl ->
          test_concurrent impl ~seed:3);
      for_both "concurrent set/test (seed 4)" (fun impl ->
          test_concurrent impl ~seed:4);
      for_both "byzantine setter" (fun impl -> test_byz_setter impl ~seed:5);
    ]
