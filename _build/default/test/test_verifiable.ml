(* Fault-free behaviour of the verifiable register (Algorithm 1):
   Definition 10 semantics and Observations 11-13 with all processes
   correct, across system sizes and schedules. *)

open Lnd_support
module Sys = Lnd_verifiable.System
module Sched = Lnd_runtime.Sched
module Policy = Lnd_runtime.Policy

let run_ok ?(max_steps = 2_000_000) (t : Sys.t) =
  match Sys.run ~max_steps t with
  | Sched.Quiescent ->
      (match Sched.failures t.sched with
      | [] -> ()
      | (f, e) :: _ ->
          Alcotest.failf "fiber %s failed: %s" f.Sched.fname
            (Printexc.to_string e))
  | Sched.Budget_exhausted -> Alcotest.fail "step budget exhausted"
  | Sched.Condition_met -> ()

let test_write_read_basic () =
  let t = Sys.make ~n:4 ~f:1 () in
  let result = ref None in
  ignore
    (Sys.client t ~pid:0 ~name:"writer" (fun () ->
         Sys.op_write t "a";
         Sys.op_write t "b"));
  ignore
    (Sys.client t ~pid:1 ~name:"reader" (fun () ->
         result := Some (Sys.op_read t ~pid:1)));
  run_ok t;
  match !result with
  | Some v ->
      Alcotest.(check bool)
        "read returns v0, a or b" true
        (List.mem v [ Value.v0; "a"; "b" ])
  | None -> Alcotest.fail "read did not complete"

let test_sign_then_verify ~n ~f ~seed () =
  let t = Sys.make ~policy:(Policy.random ~seed) ~n ~f () in
  let verified = Array.make n true in
  ignore
    (Sys.client t ~pid:0 ~name:"writer" (fun () ->
         Sys.op_write t "a";
         let ok = Sys.op_sign t "a" in
         if not ok then Alcotest.fail "sign of written value failed"));
  (* readers verify only after the sign completed: sequence via a flag *)
  run_ok t;
  for pid = 1 to n - 1 do
    ignore
      (Sys.client t ~pid ~name:(Printf.sprintf "verifier%d" pid) (fun () ->
           verified.(pid) <- Sys.op_verify t ~pid "a"))
  done;
  run_ok t;
  for pid = 1 to n - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "VALIDITY: verify after sign at p%d" pid)
      true verified.(pid)
  done

(* VERIFY of a value that was never signed returns false (Definition 10 /
   Observation 12 with a correct writer). *)
let test_verify_unsigned () =
  let t = Sys.make ~n:4 ~f:1 () in
  let res = ref true in
  ignore
    (Sys.client t ~pid:0 ~name:"writer" (fun () ->
         Sys.op_write t "a" (* written but never signed *)));
  ignore
    (Sys.client t ~pid:2 ~name:"verifier" (fun () ->
         res := Sys.op_verify t ~pid:2 "a"));
  run_ok t;
  Alcotest.(check bool) "verify of unsigned value is false" false !res

(* SIGN of a value never written fails. *)
let test_sign_unwritten () =
  let t = Sys.make ~n:4 ~f:1 () in
  let res = ref true in
  ignore
    (Sys.client t ~pid:0 ~name:"writer" (fun () ->
         Sys.op_write t "a";
         res := Sys.op_sign t "zz"));
  run_ok t;
  Alcotest.(check bool) "sign of unwritten value fails" false !res

(* Writer may sign an old value it overwrote (Section 4: "it is allowed to
   sign any of the values that it previously wrote, even older ones"). *)
let test_sign_old_value () =
  let t = Sys.make ~n:4 ~f:1 () in
  let signed = ref false and verified = ref false in
  ignore
    (Sys.client t ~pid:0 ~name:"writer" (fun () ->
         Sys.op_write t "old";
         Sys.op_write t "new";
         signed := Sys.op_sign t "old"));
  run_ok t;
  ignore
    (Sys.client t ~pid:3 ~name:"verifier" (fun () ->
         verified := Sys.op_verify t ~pid:3 "old"));
  run_ok t;
  Alcotest.(check bool) "sign old value succeeds" true !signed;
  Alcotest.(check bool) "verify old value succeeds" true !verified

(* RELAY (Observation 13): once a verify returns true, later verifies of
   the same value return true, across readers and schedules. *)
let test_relay_sequential ~seed () =
  let n = 7 and f = 2 in
  let t = Sys.make ~policy:(Policy.random ~seed) ~n ~f () in
  ignore
    (Sys.client t ~pid:0 ~name:"writer" (fun () ->
         Sys.op_write t "x";
         ignore (Sys.op_sign t "x")));
  run_ok t;
  let first = ref false in
  ignore
    (Sys.client t ~pid:1 ~name:"v1" (fun () ->
         first := Sys.op_verify t ~pid:1 "x"));
  run_ok t;
  Alcotest.(check bool) "first verify true" true !first;
  for pid = 2 to n - 1 do
    let later = ref false in
    ignore
      (Sys.client t ~pid ~name:(Printf.sprintf "v%d" pid) (fun () ->
           later := Sys.op_verify t ~pid "x"));
    run_ok t;
    Alcotest.(check bool) (Printf.sprintf "RELAY at p%d" pid) true !later
  done

(* Concurrent verifies racing the sign: whatever each returns, the
   recorded history must be linearizable (writer correct case of
   Theorem 91). *)
let test_concurrent_verify_linearizable ~seed () =
  let n = 4 and f = 1 in
  let t = Sys.make ~policy:(Policy.random ~seed) ~n ~f () in
  ignore
    (Sys.client t ~pid:0 ~name:"writer" (fun () ->
         Sys.op_write t "a";
         ignore (Sys.op_sign t "a")));
  for pid = 1 to n - 1 do
    ignore
      (Sys.client t ~pid ~name:(Printf.sprintf "v%d" pid) (fun () ->
           ignore (Sys.op_verify t ~pid "a");
           ignore (Sys.op_verify t ~pid "a")))
  done;
  run_ok t;
  Alcotest.(check bool)
    "history linearizable (correct writer)" true
    (Sys.byz_linearizable t)

(* Multiple values, interleaved writes/signs/verifies, many seeds. *)
let test_multivalue ~seed () =
  let n = 4 and f = 1 in
  let t = Sys.make ~policy:(Policy.random ~seed) ~n ~f () in
  ignore
    (Sys.client t ~pid:0 ~name:"writer" (fun () ->
         Sys.op_write t "a";
         ignore (Sys.op_sign t "a");
         Sys.op_write t "b";
         ignore (Sys.op_sign t "b");
         Sys.op_write t "c"));
  for pid = 1 to n - 1 do
    ignore
      (Sys.client t ~pid ~name:(Printf.sprintf "v%d" pid) (fun () ->
           ignore (Sys.op_verify t ~pid "a");
           ignore (Sys.op_verify t ~pid "c");
           ignore (Sys.op_read t ~pid)))
  done;
  run_ok t;
  Alcotest.(check bool) "linearizable" true (Sys.byz_linearizable t)

(* Multivalue stress: many values signed and verified concurrently; the
   streaming monitors must accept the (large) history. *)
let test_multivalue_stress ~seed () =
  let n = 4 and f = 1 in
  let t = Sys.make ~policy:(Policy.random ~seed) ~n ~f () in
  let values = [ "v1"; "v2"; "v3"; "v4"; "v5" ] in
  ignore
    (Sys.client t ~pid:0 ~name:"writer" (fun () ->
         List.iter
           (fun v ->
             Sys.op_write t v;
             ignore (Sys.op_sign t v))
           values));
  for pid = 1 to n - 1 do
    ignore
      (Sys.client t ~pid ~name:(Printf.sprintf "v%d" pid) (fun () ->
           (* each reader verifies every value, in a pid-dependent order *)
           let order = if pid mod 2 = 0 then values else List.rev values in
           List.iter (fun v -> ignore (Sys.op_verify t ~pid v)) order;
           ignore (Sys.op_verify t ~pid "never-signed")))
  done;
  run_ok ~max_steps:8_000_000 t;
  let correct _ = true in
  (match
     Lnd_history.Monitors.check_all
       (Lnd_history.Monitors.relay ~correct t.history
       @ Lnd_history.Monitors.validity ~correct t.history
       @ Lnd_history.Monitors.unforgeability ~correct ~writer:0 t.history)
   with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "monitor violation: %s" msg);
  (* never-signed value must be false everywhere *)
  List.iter
    (fun (e : (Lnd_history.Spec.Verifiable_spec.op,
               Lnd_history.Spec.Verifiable_spec.res)
              Lnd_history.History.entry) ->
      match (e.op, e.ret) with
      | ( Lnd_history.Spec.Verifiable_spec.Verify "never-signed",
          Some (Lnd_history.Spec.Verifiable_spec.Verified r, _) ) ->
          Alcotest.(check bool) "never-signed rejected" false r
      | _ -> ())
    (Lnd_history.History.complete_entries t.history)

(* Termination across sizes: every operation completes under a fair random
   scheduler (Theorem 40), including at larger n. *)
let test_termination_sizes () =
  List.iter
    (fun (n, f) ->
      let t = Sys.make ~policy:(Policy.random ~seed:(n * 17)) ~n ~f () in
      ignore
        (Sys.client t ~pid:0 ~name:"writer" (fun () ->
             Sys.op_write t "v";
             ignore (Sys.op_sign t "v")));
      for pid = 1 to min 4 (n - 1) do
        ignore
          (Sys.client t ~pid ~name:(Printf.sprintf "v%d" pid) (fun () ->
               ignore (Sys.op_verify t ~pid "v")))
      done;
      run_ok ~max_steps:5_000_000 t)
    [ (4, 1); (7, 2); (10, 3); (13, 4) ]

let tests =
  [
    Alcotest.test_case "write/read basic" `Quick test_write_read_basic;
    Alcotest.test_case "sign then verify n=4" `Quick
      (test_sign_then_verify ~n:4 ~f:1 ~seed:1);
    Alcotest.test_case "sign then verify n=7" `Quick
      (test_sign_then_verify ~n:7 ~f:2 ~seed:2);
    Alcotest.test_case "sign then verify n=10" `Quick
      (test_sign_then_verify ~n:10 ~f:3 ~seed:3);
    Alcotest.test_case "verify unsigned is false" `Quick test_verify_unsigned;
    Alcotest.test_case "sign unwritten fails" `Quick test_sign_unwritten;
    Alcotest.test_case "sign old value" `Quick test_sign_old_value;
    Alcotest.test_case "relay across readers" `Quick
      (test_relay_sequential ~seed:11);
    Alcotest.test_case "concurrent verifies linearizable (seed 5)" `Quick
      (test_concurrent_verify_linearizable ~seed:5);
    Alcotest.test_case "concurrent verifies linearizable (seed 6)" `Quick
      (test_concurrent_verify_linearizable ~seed:6);
    Alcotest.test_case "concurrent verifies linearizable (seed 7)" `Quick
      (test_concurrent_verify_linearizable ~seed:7);
    Alcotest.test_case "multivalue interleaving (seed 8)" `Quick
      (test_multivalue ~seed:8);
    Alcotest.test_case "multivalue interleaving (seed 9)" `Quick
      (test_multivalue ~seed:9);
    Alcotest.test_case "multivalue stress (seed 15)" `Quick
      (test_multivalue_stress ~seed:15);
    Alcotest.test_case "multivalue stress (seed 16)" `Quick
      (test_multivalue_stress ~seed:16);
    Alcotest.test_case "termination across sizes" `Slow
      test_termination_sizes;
  ]
