(* Theorem 23 / Figures 1-3, executable: the register-reset adversary
   breaks the relay property of test-or-set at n = 3f, and is powerless at
   n = 3f + 1. *)

module Imp = Lnd_testorset.Impossibility

let attack ?(impl = Imp.Via_verifiable) ~n ~f ~seed () =
  let o = Imp.run_attack ~seed ~impl ~n ~f () in
  Alcotest.(check int) "TEST by p_a returns 1" 1 o.Imp.test_a;
  o

(* At the impossibility bound (n = 3f) the attack flips TEST' to 0. *)
let test_violation_at_bound ?impl ~f ~seed () =
  let o = attack ?impl ~n:(3 * f) ~f ~seed () in
  Alcotest.(check int) "TEST' by p_b returns 0 (relay broken)" 0 o.Imp.test_b;
  Alcotest.(check bool) "relay violated" true o.Imp.relay_violated

(* With one more process (n = 3f + 1) the same adversary fails. *)
let test_safe_above_bound ?impl ~f ~seed () =
  let o = attack ?impl ~n:((3 * f) + 1) ~f ~seed () in
  Alcotest.(check int) "TEST' by p_b returns 1 (relay holds)" 1 o.Imp.test_b;
  Alcotest.(check bool) "relay not violated" false o.Imp.relay_violated

(* The violation at n = 3f is deterministic across schedules. *)
let test_violation_many_seeds () =
  List.iter
    (fun seed ->
      let o = attack ~n:3 ~f:1 ~seed () in
      Alcotest.(check bool)
        (Printf.sprintf "violation at n=3 f=1 (seed %d)" seed)
        true o.Imp.relay_violated)
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let test_safety_many_seeds () =
  List.iter
    (fun seed ->
      let o = attack ~n:4 ~f:1 ~seed () in
      Alcotest.(check bool)
        (Printf.sprintf "no violation at n=4 f=1 (seed %d)" seed)
        false o.Imp.relay_violated)
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let tests =
  [
    Alcotest.test_case "relay violated at n=3 f=1" `Quick
      (test_violation_at_bound ~f:1 ~seed:10);
    Alcotest.test_case "relay violated at n=6 f=2" `Quick
      (test_violation_at_bound ~f:2 ~seed:11);
    Alcotest.test_case "relay violated at n=9 f=3" `Quick
      (test_violation_at_bound ~f:3 ~seed:12);
    Alcotest.test_case "attack fails at n=4 f=1" `Quick
      (test_safe_above_bound ~f:1 ~seed:13);
    Alcotest.test_case "attack fails at n=7 f=2" `Quick
      (test_safe_above_bound ~f:2 ~seed:14);
    Alcotest.test_case "attack fails at n=10 f=3" `Quick
      (test_safe_above_bound ~f:3 ~seed:15);
    Alcotest.test_case "violation deterministic across seeds" `Quick
      test_violation_many_seeds;
    Alcotest.test_case "safety deterministic across seeds" `Quick
      test_safety_many_seeds;
    (* The impossibility is implementation-independent: the same adversary
       also breaks the STICKY-based test-or-set at n = 3f and fails above. *)
    Alcotest.test_case "sticky-based: relay violated at n=3 f=1" `Quick
      (test_violation_at_bound ~impl:Imp.Via_sticky ~f:1 ~seed:20);
    Alcotest.test_case "sticky-based: relay violated at n=6 f=2" `Quick
      (test_violation_at_bound ~impl:Imp.Via_sticky ~f:2 ~seed:21);
    Alcotest.test_case "sticky-based: attack fails at n=4 f=1" `Quick
      (test_safe_above_bound ~impl:Imp.Via_sticky ~f:1 ~seed:22);
    Alcotest.test_case "sticky-based: attack fails at n=7 f=2" `Quick
      (test_safe_above_bound ~impl:Imp.Via_sticky ~f:2 ~seed:23);
    (* the boundary at larger resilience *)
    Alcotest.test_case "relay violated at n=12 f=4" `Slow
      (test_violation_at_bound ~f:4 ~seed:30);
    Alcotest.test_case "attack fails at n=13 f=4" `Slow
      (test_safe_above_bound ~f:4 ~seed:31);
  ]
