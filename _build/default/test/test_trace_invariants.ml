(* The appendix observations (28/30/92/93/94) as trace invariants,
   validated on real adversarial executions, plus unit tests of the
   checkers on crafted traces. *)

open Lnd_support
open Lnd_shm
module Inv = Lnd_history.Trace_invariants
module Sched = Lnd_runtime.Sched
module Policy = Lnd_runtime.Policy

let no_violations name vs =
  match vs with
  | [] -> ()
  | v :: _ ->
      Alcotest.failf "%s: %s (%d total)" name
        (Format.asprintf "%a" Inv.pp_violation v)
        (List.length vs)

(* ---- crafted traces exercise the checkers themselves ---- *)

let acc ?(pid = 1) seq kind reg value : Space.access =
  { Space.acc_seq = seq; acc_pid = pid; acc_kind = kind; acc_reg = reg;
    acc_value = value }

let all_correct _ = true

let test_counter_checker () =
  let w c = Univ.inj Codecs.counter c in
  let good =
    [ acc 0 `Write "C_1" (w 1); acc 1 `Write "C_1" (w 2) ]
  in
  Alcotest.(check int) "monotone ok" 0
    (List.length (Inv.counters_monotone ~correct:all_correct good));
  let bad = [ acc 0 `Write "C_1" (w 5); acc 1 `Write "C_1" (w 3) ] in
  Alcotest.(check int) "decrease flagged" 1
    (List.length (Inv.counters_monotone ~correct:all_correct bad));
  (* Byzantine writes are not constrained *)
  Alcotest.(check int) "byzantine exempt" 0
    (List.length (Inv.counters_monotone ~correct:(fun pid -> pid <> 1) bad))

let test_witness_checker () =
  let w l = Univ.inj Codecs.vset (Value.Set.of_list l) in
  let good =
    [ acc 0 `Write "R_2" (w [ "a" ]); acc 1 `Write "R_2" (w [ "a"; "b" ]) ]
  in
  Alcotest.(check int) "grow ok" 0
    (List.length (Inv.witness_sets_monotone ~correct:all_correct good));
  let bad =
    [ acc 0 `Write "R_2" (w [ "a"; "b" ]); acc 1 `Write "R_2" (w [ "b" ]) ]
  in
  Alcotest.(check int) "drop flagged" 1
    (List.length (Inv.witness_sets_monotone ~correct:all_correct bad));
  (* mailbox registers are not witness sets *)
  let mailbox = [ acc 0 `Write "R_{1,2}" (w [ "a" ]) ] in
  Alcotest.(check int) "mailboxes skipped" 0
    (List.length (Inv.witness_sets_monotone ~correct:all_correct mailbox))

let test_sticky_checker () =
  let w v = Univ.inj Codecs.value_opt v in
  let good =
    [
      acc 0 `Write "E_1" (w (Some "x"));
      acc 1 `Write "E_1" (w (Some "x"));
      acc 2 `Write "R_1" (w (Some "x"));
    ]
  in
  Alcotest.(check int) "stable ok" 0
    (List.length (Inv.sticky_registers_write_once ~correct:all_correct good));
  let bad =
    [ acc 0 `Write "E_1" (w (Some "x")); acc 1 `Write "E_1" (w (Some "y")) ]
  in
  Alcotest.(check int) "flip flagged" 1
    (List.length (Inv.sticky_registers_write_once ~correct:all_correct bad))

let test_stamp_checker () =
  let w c = Univ.inj Codecs.vset_stamped (Value.Set.empty, c) in
  let good = [ acc 0 `Write "R_{1,2}" (w 1); acc 1 `Write "R_{1,2}" (w 2) ] in
  Alcotest.(check int) "increase ok" 0
    (List.length (Inv.mailbox_stamps_increase ~correct:all_correct good));
  let bad = [ acc 0 `Write "R_{1,2}" (w 2); acc 1 `Write "R_{1,2}" (w 2) ] in
  Alcotest.(check int) "repeat flagged" 1
    (List.length (Inv.mailbox_stamps_increase ~correct:all_correct bad))

(* ---- real adversarial executions satisfy the invariants ---- *)

let test_verifiable_run_invariants ~seed () =
  let module Sys = Lnd_verifiable.System in
  let n = 4 and f = 1 in
  let t =
    Sys.make ~policy:(Policy.random ~seed) ~n ~f ~byzantine:[ 3 ] ()
  in
  Space.set_trace t.space ~capacity:300_000;
  ignore (Lnd_byz.Byz_verifiable.spawn_flipflop t.sched t.regs ~pid:3 ~v:"v");
  ignore
    (Sys.client t ~pid:0 ~name:"w" (fun () ->
         Sys.op_write t "v";
         ignore (Sys.op_sign t "v")));
  for pid = 1 to 2 do
    ignore
      (Sys.client t ~pid ~name:(Printf.sprintf "r%d" pid) (fun () ->
           ignore (Sys.op_verify t ~pid "v")))
  done;
  (match Sys.run ~max_steps:2_000_000 t with
  | Sched.Quiescent -> ()
  | _ -> Alcotest.fail "stuck");
  no_violations "verifiable trace"
    (Inv.check_verifiable
       ~correct:(fun pid -> t.correct.(pid))
       (Space.trace t.space))

let test_sticky_run_invariants ~seed () =
  let module Sys = Lnd_sticky.System in
  let n = 4 and f = 1 in
  let t = Sys.make ~policy:(Policy.random ~seed) ~n ~f ~byzantine:[ 0 ] () in
  Space.set_trace t.space ~capacity:300_000;
  ignore
    (Lnd_byz.Byz_sticky.spawn_equivocating_writer t.sched t.regs ~va:"a"
       ~vb:"b" ~flip_after:2 ());
  for pid = 1 to 3 do
    ignore
      (Sys.client t ~pid ~name:(Printf.sprintf "r%d" pid) (fun () ->
           ignore (Sys.op_read t ~pid)))
  done;
  (match Sys.run ~max_steps:2_000_000 t with
  | Sched.Quiescent -> ()
  | _ -> Alcotest.fail "stuck");
  no_violations "sticky trace"
    (Inv.check_sticky
       ~correct:(fun pid -> t.correct.(pid))
       (Space.trace t.space))

let tests =
  [
    Alcotest.test_case "checker: counters" `Quick test_counter_checker;
    Alcotest.test_case "checker: witness sets" `Quick test_witness_checker;
    Alcotest.test_case "checker: sticky write-once" `Quick
      test_sticky_checker;
    Alcotest.test_case "checker: mailbox stamps" `Quick test_stamp_checker;
    Alcotest.test_case "verifiable run satisfies Obs 28/30 (seed 1)" `Quick
      (test_verifiable_run_invariants ~seed:1);
    Alcotest.test_case "verifiable run satisfies Obs 28/30 (seed 2)" `Quick
      (test_verifiable_run_invariants ~seed:2);
    Alcotest.test_case "sticky run satisfies Obs 92/93/94 (seed 3)" `Quick
      (test_sticky_run_invariants ~seed:3);
    Alcotest.test_case "sticky run satisfies Obs 92/93/94 (seed 4)" `Quick
      (test_sticky_run_invariants ~seed:4);
  ]
