test/test_sticky_byz.ml: Alcotest Array List Lnd_byz Lnd_history Lnd_runtime Lnd_sticky Printexc Printf
