test/test_policies.ml: Alcotest Array List Lnd_byz Lnd_history Lnd_runtime Lnd_sticky Lnd_verifiable Policy Printf Sched
