test/test_monitors.ml: Alcotest List Lnd_history
