test/test_composition.ml: Alcotest Cell List Lnd_runtime Lnd_shm Lnd_sticky Lnd_verifiable Option Policy Printexc Printf Sched Space
