test/test_verifiable_byz.ml: Alcotest Array List Lnd_byz Lnd_history Lnd_runtime Lnd_support Lnd_verifiable Printexc Printf
