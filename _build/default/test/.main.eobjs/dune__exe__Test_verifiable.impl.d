test/test_verifiable.ml: Alcotest Array List Lnd_history Lnd_runtime Lnd_support Lnd_verifiable Printexc Printf Value
