test/test_broadcast.ml: Alcotest Array List Lnd_broadcast Lnd_byz Lnd_runtime Lnd_shm Policy Printexc Printf Sched Space
