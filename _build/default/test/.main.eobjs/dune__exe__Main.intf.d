test/main.mli:
