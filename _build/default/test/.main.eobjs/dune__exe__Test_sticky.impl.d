test/test_sticky.ml: Alcotest Array List Lnd_runtime Lnd_sticky Printexc Printf
