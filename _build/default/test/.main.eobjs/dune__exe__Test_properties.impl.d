test/test_properties.ml: Array Codecs List Lnd_byz Lnd_history Lnd_runtime Lnd_sticky Lnd_support Lnd_testorset Lnd_verifiable Printf QCheck QCheck_alcotest Rng Univ Value
