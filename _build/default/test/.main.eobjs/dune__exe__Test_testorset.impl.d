test/test_testorset.ml: Alcotest Array List Lnd_byz Lnd_runtime Lnd_testorset Printexc Printf
