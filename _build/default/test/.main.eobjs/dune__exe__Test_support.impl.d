test/test_support.ml: Alcotest Array Codecs Format Int List Lnd_support Rng Univ Value
