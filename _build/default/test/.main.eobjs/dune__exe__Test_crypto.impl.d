test/test_crypto.ml: Alcotest Lnd_crypto
