test/test_asset.ml: Alcotest Array Format List Lnd_asset Lnd_broadcast Lnd_byz Lnd_history Lnd_runtime Lnd_shm Policy Printf Sched Space
