test/test_regular.ml: Alcotest Array Cell List Lnd_byz Lnd_history Lnd_runtime Lnd_shm Lnd_sticky Lnd_support Lnd_verifiable Policy Printf Rng Sched Space String
