test/test_impossibility.ml: Alcotest List Lnd_testorset Printf
