test/test_reliable.ml: Alcotest Array List Lnd_broadcast Lnd_byz Lnd_msgpass Lnd_runtime Lnd_shm Lnd_support Option Policy Printf Sched Space String Univ
