test/test_byzlin.ml: Alcotest Lnd_history
