test/test_sigbase.ml: Alcotest Array Lnd_crypto Lnd_runtime Lnd_shm Lnd_sigbase Lnd_support Policy Printexc Printf Sched Space Univ
