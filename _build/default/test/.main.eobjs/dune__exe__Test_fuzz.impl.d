test/test_fuzz.ml: Alcotest Format List Lnd_fuzz
