test/test_shm.ml: Alcotest Format List Lnd_shm Lnd_support Space Univ
