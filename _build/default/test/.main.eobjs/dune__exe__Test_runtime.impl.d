test/test_runtime.ml: Alcotest Array Explore List Lnd_runtime Lnd_shm Lnd_sticky Lnd_support Policy Register Sched Space String Univ
