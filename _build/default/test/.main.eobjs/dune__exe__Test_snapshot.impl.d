test/test_snapshot.ml: Alcotest Array Cell Codecs List Lnd_runtime Lnd_shm Lnd_snapshot Lnd_support Lnd_verifiable Policy Printexc Printf Sched Space Univ Value
