test/test_msgpass.ml: Alcotest Array Cell Codecs List Lnd_history Lnd_msgpass Lnd_runtime Lnd_shm Lnd_sticky Lnd_support Lnd_verifiable Option Policy Printexc Printf Sched Space Univ Value
