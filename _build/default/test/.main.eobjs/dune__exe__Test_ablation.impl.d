test/test_ablation.ml: Alcotest Array Cell Codecs List Lnd_runtime Lnd_shm Lnd_sticky Lnd_support Lnd_verifiable Policy Printf Register Sched Space String Univ Value
