test/test_trace_invariants.ml: Alcotest Array Codecs Format List Lnd_byz Lnd_history Lnd_runtime Lnd_shm Lnd_sticky Lnd_support Lnd_verifiable Printf Space Univ Value
