test/test_history.ml: Alcotest List Lnd_history Lnd_support
