(* Extension experiment E13: run Algorithms 1 and 2 over REGULAR (rather
   than atomic) base registers, per the Cell.regular_allocator weakening.

   The paper's theorems assume atomic registers; these tests probe the
   algorithms' robustness empirically. The core Byzantine properties
   (relay, uniqueness, unforgeability) rest on monotone witness sets and
   stamped round handshakes, and survive the old-or-new weakening in every
   schedule we generate; full READ atomicity, by contrast, genuinely
   degrades to regular semantics — documented in EXPERIMENTS.md, not
   asserted here. *)

open Lnd_support
open Lnd_shm
open Lnd_runtime
module Vr = Lnd_verifiable.Verifiable
module St = Lnd_sticky.Sticky
module Monitors = Lnd_history.Monitors
module History = Lnd_history.History
module V = Lnd_history.Spec.Verifiable_spec
module S = Lnd_history.Spec.Sticky_spec

let run_ok ?(max_steps = 8_000_000) sched =
  match Sched.run ~max_steps sched with
  | Sched.Quiescent -> ()
  | Sched.Budget_exhausted ->
      Alcotest.fail "step budget exhausted over regular registers"
  | Sched.Condition_met -> ()

(* Verifiable register over regular cells: validity, relay and
   unforgeability hold across schedules. *)
let test_verifiable_over_regular ~seed () =
  let n = 4 and f = 1 in
  let space = Space.create ~n in
  let sched = Sched.create ~space ~choose:(Policy.random ~seed) in
  let alloc =
    Cell.regular_allocator
      ~rng:(Rng.create (seed * 13))
      ~window:20
      (Cell.shm_allocator space)
  in
  let regs = Vr.alloc_with alloc { Vr.n; f } in
  for pid = 0 to n - 1 do
    ignore
      (Sched.spawn sched ~pid ~name:(Printf.sprintf "help%d" pid)
         ~daemon:true (fun () -> Vr.help regs ~pid))
  done;
  let h : (V.op, V.res) History.t = History.create () in
  let writer = Vr.writer regs in
  ignore
    (Sched.spawn sched ~pid:0 ~name:"writer" (fun () ->
         ignore
           (History.record h ~pid:0 (V.Write "a") (fun () ->
                Vr.write writer "a";
                V.Done));
         ignore
           (History.record h ~pid:0 (V.Sign "a") (fun () ->
                V.Signed (Vr.sign writer "a")))));
  run_ok sched;
  for pid = 1 to n - 1 do
    let rd = Vr.reader regs ~pid in
    ignore
      (Sched.spawn sched ~pid ~name:(Printf.sprintf "v%d" pid) (fun () ->
           ignore
             (History.record h ~pid (V.Verify "a") (fun () ->
                  V.Verified (Vr.verify rd "a")));
           ignore
             (History.record h ~pid (V.Verify "ghost") (fun () ->
                  V.Verified (Vr.verify rd "ghost")))))
  done;
  run_ok sched;
  let correct _ = true in
  (match
     Monitors.check_all
       (Monitors.relay ~correct h
       @ Monitors.validity ~correct h
       @ Monitors.unforgeability ~correct ~writer:0 h)
   with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "property violated over regular registers: %s" msg);
  (* validity also observable directly: every verify of the signed value
     after quiescence returned true *)
  List.iter
    (fun (e : (V.op, V.res) History.entry) ->
      match (e.op, e.ret) with
      | V.Verify "a", Some (V.Verified r, _) ->
          Alcotest.(check bool) "signed value verifies" true r
      | V.Verify "ghost", Some (V.Verified r, _) ->
          Alcotest.(check bool) "unsigned value rejected" false r
      | _ -> ())
    (History.complete_entries h)

(* Sticky register over regular cells. Returns the read results so the
   callers can assert uniqueness (which survives the weakening) and
   measure validity (which does NOT: a read right after a completed write
   can see the pre-write state of enough registers to return ⊥ — one of
   E13's findings). *)
let sticky_over_regular ~seed ~byz_writer () =
  let n = 4 and f = 1 in
  let space = Space.create ~n in
  let sched = Sched.create ~space ~choose:(Policy.random ~seed) in
  let alloc =
    Cell.regular_allocator
      ~rng:(Rng.create (seed * 29))
      ~window:20
      (Cell.shm_allocator space)
  in
  let regs = St.alloc_with alloc { St.n; f } in
  for pid = 0 to n - 1 do
    if not (byz_writer && pid = 0) then
      ignore
        (Sched.spawn sched ~pid ~name:(Printf.sprintf "help%d" pid)
           ~daemon:true (fun () -> St.help regs ~pid))
  done;
  if byz_writer then
    ignore
      (Lnd_byz.Byz_sticky.spawn_equivocating_writer sched regs ~va:"a"
         ~vb:"b" ~flip_after:2 ())
  else begin
    let writer = St.writer regs in
    ignore
      (Sched.spawn sched ~pid:0 ~name:"writer" (fun () -> St.write writer "a"))
  end;
  let results = Array.make n None in
  for pid = 1 to n - 1 do
    let rd = St.reader regs ~pid in
    ignore
      (Sched.spawn sched ~pid ~name:(Printf.sprintf "r%d" pid) (fun () ->
           results.(pid) <- St.read rd))
  done;
  run_ok sched;
  let non_bot = Array.to_list results |> List.filter_map (fun x -> x) in
  (match List.sort_uniq compare non_bot with
  | [] | [ _ ] -> ()
  | vs ->
      Alcotest.failf "uniqueness violated over regular registers: %s"
        (String.concat "," vs));
  results

(* Uniqueness survives, correct writer. *)
let test_sticky_uniqueness ~seed () =
  ignore (sticky_over_regular ~seed ~byz_writer:false ())

(* Uniqueness survives, equivocating Byzantine writer. *)
let test_sticky_uniqueness_byz ~seed () =
  ignore (sticky_over_regular ~seed ~byz_writer:true ())

(* E13 finding: sticky VALIDITY does not survive regular registers — a
   READ after a completed WRITE can return ⊥ in some schedules. We assert
   the counterexample is reproducible across the fixed seed sweep. *)
let test_sticky_validity_degrades () =
  let violations = ref 0 in
  for seed = 1 to 20 do
    let results = sticky_over_regular ~seed ~byz_writer:false () in
    if Array.exists (fun r -> r = None) results then incr violations
  done;
  Alcotest.(check bool)
    (Printf.sprintf
       "validity counterexample found over regular registers (%d/20 seeds)"
       !violations)
    true (!violations > 0)

let seeds = [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]

let tests =
  List.concat
    [
      List.map
        (fun s ->
          Alcotest.test_case
            (Printf.sprintf "verifiable over regular registers (seed %d)" s)
            `Quick
            (test_verifiable_over_regular ~seed:s))
        seeds;
      List.map
        (fun s ->
          Alcotest.test_case
            (Printf.sprintf "sticky uniqueness over regular (seed %d)" s)
            `Quick
            (test_sticky_uniqueness ~seed:s))
        seeds;
      List.map
        (fun s ->
          Alcotest.test_case
            (Printf.sprintf
               "sticky uniqueness over regular, equivocating writer (seed %d)"
               s)
            `Quick
            (test_sticky_uniqueness_byz ~seed:s))
        seeds;
      [
        Alcotest.test_case
          "E13: sticky validity degrades over regular registers" `Quick
          test_sticky_validity_degrades;
      ];
    ]
