(* Ablation experiments: each design choice the paper's prose motivates is
   removed, and the predicted failure is exhibited; the unmodified
   algorithm is then shown to survive the same scenario.

   A1 (§5.1): the strawman one-shot VERIFY breaks the relay property.
   A2 (§7.1): WRITE without the n-f witness wait lets a READ after a
              completed WRITE return ⊥ (validity violation).
   A3 (§7.1): the lax witness policy lets an equivocating writer split
              the correct witnesses between two values. *)

open Lnd_support
open Lnd_shm
open Lnd_runtime
module Vr = Lnd_verifiable.Verifiable
module Vabl = Lnd_verifiable.Ablation
module St = Lnd_sticky.Sticky
module Sabl = Lnd_sticky.Ablation

(* Peek at a register's committed value by name (test-only introspection). *)
let peek_vset space ~name : Value.Set.t =
  let regs = List.concat_map (fun pid -> Space.owned space ~pid) [ 0; 1; 2; 3; 4; 5; 6 ] in
  match List.find_opt (fun (r : Register.t) -> r.Register.name = name) regs with
  | Some r -> Univ.prj_default Codecs.vset ~default:Value.Set.empty r.Register.value
  | None -> Alcotest.failf "no register named %s" name

let peek_vopt space ~n ~name : Value.t option =
  let regs = List.concat_map (fun pid -> Space.owned space ~pid) (List.init n (fun i -> i)) in
  match List.find_opt (fun (r : Register.t) -> r.Register.name = name) regs with
  | Some r -> Univ.prj_default Codecs.value_opt ~default:None r.Register.value
  | None -> Alcotest.failf "no register named %s" name

let fiber_done (fb : Sched.fiber) (_ : Sched.t) =
  match fb.Sched.state with Sched.Finished _ -> true | Sched.Ready _ -> false

(* Daemon-only phases need a non-daemon "pacer" to keep the scheduler
   running while we wait for a predicate over daemon-made progress. *)
let pacer = ref 0

let run_until ?(pace_pid = 2) sched name pred =
  incr pacer;
  ignore
    (Sched.spawn sched ~pid:pace_pid ~name:(Printf.sprintf "pacer%d" !pacer)
       (fun () ->
         for _ = 1 to 200_000 do
           Sched.yield ()
         done));
  match Sched.run ~max_steps:4_000_000 ~until:pred sched with
  | Sched.Condition_met -> ()
  | _ -> Alcotest.failf "%s: phase stuck" name

(* ------------------------------------------------------------------ *)
(* A1: strawman verify breaks relay                                    *)
(* ------------------------------------------------------------------ *)

(* n=7, f=2; Byzantine {p0 (writer), p6}. The coalition plants v in its
   two witness registers and lets exactly one correct process adopt; the
   naive verifier counts 3 = f+1 yes and says TRUE; after the coalition
   erases its registers, a later naive verify says FALSE. *)
let a1_setup () =
  let n = 7 and f = 2 in
  let space = Space.create ~n in
  let sched = Sched.create ~space ~choose:(Policy.random ~seed:3) in
  let regs = Vr.alloc space { Vr.n; f } in
  (* help only for p1 (other correct helps stay asleep so that only p1
     adopts; Byzantine processes run no help) *)
  let _h1 =
    Sched.spawn sched ~pid:1 ~name:"help1" ~daemon:true (fun () ->
        Vr.help regs ~pid:1)
  in
  (* coalition plants v *)
  let plant0 =
    Sched.spawn sched ~pid:0 ~name:"byz-plant0" (fun () ->
        Cell.write regs.Vr.r.(0) (Univ.inj Codecs.vset (Value.Set.singleton "v")))
  in
  let plant6 =
    Sched.spawn sched ~pid:6 ~name:"byz-plant6" (fun () ->
        Cell.write regs.Vr.r.(6) (Univ.inj Codecs.vset (Value.Set.singleton "v")))
  in
  run_until sched "plant" (fun st ->
      fiber_done plant0 st && fiber_done plant6 st);
  (* an asker appears (p5 bumps its round counter), prompting p1's help to
     adopt v from R_0 *)
  ignore
    (Sched.spawn sched ~pid:5 ~name:"asker" (fun () ->
         Cell.write regs.Vr.c.(5) (Univ.inj Codecs.counter 1)));
  run_until sched "adopt" (fun _ ->
      Value.Set.mem "v" (peek_vset space ~name:"R_1"));
  (space, sched, regs)

let test_a1_naive_breaks_relay () =
  let space, sched, regs = a1_setup () in
  (* first naive verify: sees R_0, R_1, R_6 ∋ v -> 3 >= f+1 -> TRUE *)
  let first = ref false in
  let va =
    Sched.spawn sched ~pid:2 ~name:"naiveA" (fun () ->
        first := Vabl.naive_verify_all regs "v")
  in
  run_until sched "naiveA" (fiber_done va);
  Alcotest.(check bool) "naive verify returns true" true !first;
  (* the coalition erases its registers ("denies") *)
  let erase0 =
    Sched.spawn sched ~pid:0 ~name:"byz-erase0" (fun () ->
        Cell.write regs.Vr.r.(0) (Univ.inj Codecs.vset Value.Set.empty))
  in
  let erase6 =
    Sched.spawn sched ~pid:6 ~name:"byz-erase6" (fun () ->
        Cell.write regs.Vr.r.(6) (Univ.inj Codecs.vset Value.Set.empty))
  in
  run_until sched "erase" (fun st -> fiber_done erase0 st && fiber_done erase6 st);
  (* later naive verify: only R_1 ∋ v -> 1 < f+1 -> FALSE: relay broken *)
  let second = ref true in
  let vb =
    Sched.spawn sched ~pid:3 ~name:"naiveB" (fun () ->
        second := Vabl.naive_verify_all regs "v")
  in
  run_until sched "naiveB" (fiber_done vb);
  Alcotest.(check bool) "later naive verify returns false" false !second;
  ignore space

(* The real Algorithm 1 in the same scenario: whatever the first VERIFY
   answers, no later VERIFY contradicts a TRUE. *)
let test_a1_algorithm1_survives () =
  let n = 7 and f = 2 in
  let space = Space.create ~n in
  let sched = Sched.create ~space ~choose:(Policy.random ~seed:3) in
  let regs = Vr.alloc space { Vr.n; f } in
  for pid = 1 to 5 do
    ignore
      (Sched.spawn sched ~pid ~name:(Printf.sprintf "help%d" pid)
         ~daemon:true (fun () -> Vr.help regs ~pid))
  done;
  let plant =
    Sched.spawn sched ~pid:0 ~name:"byz-plant" (fun () ->
        Cell.write regs.Vr.r.(0) (Univ.inj Codecs.vset (Value.Set.singleton "v"));
        Cell.write regs.Vr.r.(6) (Univ.inj Codecs.vset (Value.Set.singleton "v")))
  in
  (* note: p0 cannot write R_6; expect the plant fiber to fail on the
     second write — only its own register is planted *)
  ignore plant;
  let first = ref false in
  let va =
    Sched.spawn sched ~pid:2 ~name:"verifyA" (fun () ->
        first := Vr.verify (Vr.reader regs ~pid:2) "v")
  in
  run_until sched "verifyA" (fiber_done va);
  (* erase *)
  let erase =
    Sched.spawn sched ~pid:0 ~name:"byz-erase" (fun () ->
        Cell.write regs.Vr.r.(0) (Univ.inj Codecs.vset Value.Set.empty))
  in
  run_until sched "erase" (fiber_done erase);
  let second = ref false in
  let vb =
    Sched.spawn sched ~pid:3 ~name:"verifyB" (fun () ->
        second := Vr.verify (Vr.reader regs ~pid:3) "v")
  in
  run_until sched "verifyB" (fiber_done vb);
  (* RELAY: a true first answer forces a true second answer *)
  if !first then Alcotest.(check bool) "relay preserved" true !second

(* ------------------------------------------------------------------ *)
(* A2: write without the witness wait breaks validity                  *)
(* ------------------------------------------------------------------ *)

(* One run of the race. Asynchrony is modelled by processes p1..p4 being
   very slow: they take no steps during the first [freeze] scheduler steps
   (and run normally afterwards — the schedule stays fair). The writer
   performs WRITE, completing strictly before the reader invokes READ. *)
let a2_run ~seed ~nowait ~freeze : Value.t option =
  let n = 7 and f = 2 in
  let space = Space.create ~n in
  let base = Policy.random ~seed in
  let slow pid = pid >= 1 && pid <= 4 in
  let choose (sched : Sched.t) (ready : Sched.fiber array) =
    if sched.Sched.steps > freeze then base sched ready
    else begin
      let awake =
        Array.to_list ready
        |> List.mapi (fun i fb -> (i, fb))
        |> List.filter (fun (_, (fb : Sched.fiber)) -> not (slow fb.Sched.pid))
      in
      match awake with
      | [] -> base sched ready
      | _ ->
          let i = base sched (Array.of_list (List.map snd awake)) in
          fst (List.nth awake i)
    end
  in
  let sched = Sched.create ~space ~choose in
  let regs = St.alloc space { St.n; f } in
  for pid = 0 to n - 1 do
    ignore
      (Sched.spawn sched ~pid ~name:(Printf.sprintf "help%d" pid)
         ~daemon:true (fun () -> St.help regs ~pid))
  done;
  let writer = St.writer regs in
  let wf =
    Sched.spawn sched ~pid:0 ~name:"writer" (fun () ->
        if nowait then Sabl.write_nowait writer "v" else St.write writer "v")
  in
  run_until ~pace_pid:5 sched "write" (fiber_done wf);
  (* WRITE has completed; now READ *)
  let got = ref None in
  let rf =
    Sched.spawn sched ~pid:6 ~name:"reader" (fun () ->
        got := St.read (St.reader regs ~pid:6))
  in
  run_until ~pace_pid:5 sched "read" (fiber_done rf);
  !got

let test_a2_nowait_breaks_validity () =
  let seeds = List.init 20 (fun i -> i) in
  let violations =
    List.filter (fun seed -> a2_run ~seed ~nowait:true ~freeze:50_000 = None) seeds
  in
  Alcotest.(check bool)
    (Printf.sprintf
       "some schedule returns ⊥ after a completed no-wait WRITE (%d/20 seeds)"
       (List.length violations))
    true
    (List.length violations > 0)

let test_a2_algorithm2_survives () =
  List.iter
    (fun seed ->
      Alcotest.(check (option string))
        (Printf.sprintf "VALIDITY with the real WRITE (seed %d)" seed)
        (Some "v")
        (a2_run ~seed ~nowait:false ~freeze:50_000))
    (List.init 10 (fun i -> i))

(* ------------------------------------------------------------------ *)
(* A3: lax witness policy lets witnesses split                         *)
(* ------------------------------------------------------------------ *)

(* Equivocating Byzantine writer vs help policy: phase 1 shows "a" to p1,
   phase 2 shows "b" to p2/p3. *)
let a3_run ~lax =
  let n = 4 and f = 1 in
  let space = Space.create ~n in
  let sched = Sched.create ~space ~choose:(Policy.random ~seed:5) in
  let regs = St.alloc space { St.n; f } in
  let help = if lax then Sabl.help_lax else St.help in
  let helps =
    Array.init n (fun pid ->
        if pid = 0 then None
        else
          Some
            (Sched.spawn sched ~pid ~name:(Printf.sprintf "help%d" pid)
               ~daemon:true (fun () -> help regs ~pid)))
  in
  ignore helps;
  (* phase 1: E_0 = a, only p1 awake; give it an asker so it answers *)
  let w1 =
    Sched.spawn sched ~pid:0 ~name:"byz-a" (fun () ->
        Cell.write regs.St.e.(0) (Univ.inj Codecs.value_opt (Some "a")))
  in
  ignore
    (Sched.spawn sched ~pid:2 ~name:"asker" (fun () ->
         Cell.write regs.St.c.(2) (Univ.inj Codecs.counter 1)));
  sched.Sched.enabled <-
    (fun fb -> fb.Sched.pid <> 3 || not fb.Sched.daemon);
  run_until sched "phase a" (fun st ->
      fiber_done w1 st
      && (not lax)
      || (lax && peek_vopt space ~n ~name:"R_1" = Some "a"));
  (* phase 2: flip E_0 to b, wake everyone *)
  let w2 =
    Sched.spawn sched ~pid:0 ~name:"byz-b" (fun () ->
        Cell.write regs.St.e.(0) (Univ.inj Codecs.value_opt (Some "b")))
  in
  sched.Sched.enabled <- (fun _ -> true);
  run_until sched "flip" (fiber_done w2);
  (* let the system settle for a while *)
  ignore
    (Sched.spawn sched ~pid:2 ~name:"settle" (fun () ->
         for _ = 1 to 2000 do
           Sched.yield ()
         done));
  ignore (Sched.run ~max_steps:500_000 sched);
  let witnesses =
    List.filter_map
      (fun name -> peek_vopt space ~n ~name)
      [ "R_1"; "R_2"; "R_3" ]
  in
  (space, sched, regs, witnesses)

let test_a3_lax_splits_witnesses () =
  let _, _, _, witnesses = a3_run ~lax:true in
  let distinct = List.sort_uniq compare witnesses in
  Alcotest.(check bool)
    (Printf.sprintf "lax policy splits correct witnesses (%s)"
       (String.concat "," witnesses))
    true
    (List.length distinct > 1)

let test_a3_strict_never_splits () =
  let _, _, _, witnesses = a3_run ~lax:false in
  let distinct = List.sort_uniq compare witnesses in
  Alcotest.(check bool)
    (Printf.sprintf "strict policy keeps witnesses unanimous (%s)"
       (String.concat "," witnesses))
    true
    (List.length distinct <= 1)

(* With split witnesses, a READ cannot assemble an n-f quorum and stalls;
   with the strict policy it terminates. *)
let test_a3_lax_read_stalls () =
  let _, sched, regs, _ = a3_run ~lax:true in
  let finished = ref false in
  ignore
    (Sched.spawn sched ~pid:2 ~name:"reader" (fun () ->
         ignore (St.read (St.reader regs ~pid:2));
         finished := true));
  ignore (Sched.run ~max_steps:300_000 sched);
  Alcotest.(check bool) "read stalls under split witnesses" false !finished

let test_a3_strict_read_terminates () =
  let _, sched, regs, _ = a3_run ~lax:false in
  let finished = ref false in
  ignore
    (Sched.spawn sched ~pid:2 ~name:"reader" (fun () ->
         ignore (St.read (St.reader regs ~pid:2));
         finished := true));
  ignore (Sched.run ~max_steps:2_000_000 sched);
  Alcotest.(check bool) "read terminates under strict policy" true !finished

let tests =
  [
    Alcotest.test_case "A1: strawman verify breaks relay" `Quick
      test_a1_naive_breaks_relay;
    Alcotest.test_case "A1: Algorithm 1 survives the same attack" `Quick
      test_a1_algorithm1_survives;
    Alcotest.test_case "A2: no-wait write breaks validity" `Quick
      test_a2_nowait_breaks_validity;
    Alcotest.test_case "A2: Algorithm 2 write survives" `Quick
      test_a2_algorithm2_survives;
    Alcotest.test_case "A3: lax policy splits witnesses" `Quick
      test_a3_lax_splits_witnesses;
    Alcotest.test_case "A3: strict policy never splits" `Quick
      test_a3_strict_never_splits;
    Alcotest.test_case "A3: lax read stalls" `Quick test_a3_lax_read_stalls;
    Alcotest.test_case "A3: strict read terminates" `Quick
      test_a3_strict_read_terminates;
  ]
