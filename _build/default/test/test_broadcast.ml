(* Non-equivocating broadcast from sticky registers (Section 1.2). *)

open Lnd_shm
open Lnd_runtime
module B = Lnd_broadcast.Broadcast

type sys = { sched : Sched.t; bc : B.Neq.t; n : int }

let mk ?(seed = 3) ?(slots = 1) ~n ~f ~byzantine () : sys =
  let space = Space.create ~n in
  let sched = Sched.create ~space ~choose:(Policy.random ~seed) in
  let bc = B.Neq.create space sched ~n ~f ~slots ~byzantine () in
  { sched; bc; n }

let run_ok ?(max_steps = 6_000_000) s =
  match Sched.run ~max_steps s.sched with
  | Sched.Quiescent ->
      (match Sched.failures s.sched with
      | [] -> ()
      | ((f : Sched.fiber), e) :: _ ->
          Alcotest.failf "fiber %s failed: %s" f.Sched.fname
            (Printexc.to_string e))
  | Sched.Budget_exhausted -> Alcotest.fail "step budget exhausted"
  | Sched.Condition_met -> ()

(* A correct sender's broadcast is delivered by everyone. *)
let test_delivery () =
  let s = mk ~n:4 ~f:1 ~byzantine:[] () in
  ignore
    (Sched.spawn s.sched ~pid:0 ~name:"sender" (fun () ->
         B.Neq.bcast s.bc ~sender:0 ~slot:0 "msg"));
  run_ok s;
  for pid = 1 to 3 do
    let got = ref None in
    ignore
      (Sched.spawn s.sched ~pid ~name:(Printf.sprintf "d%d" pid) (fun () ->
           got := B.Neq.deliver s.bc ~reader:pid ~sender:0 ~slot:0));
    run_ok s;
    Alcotest.(check (option string))
      (Printf.sprintf "delivered at p%d" pid)
      (Some "msg") !got
  done

(* Multiple senders, multiple slots. *)
let test_multi_sender () =
  let s = mk ~n:4 ~f:1 ~slots:2 ~byzantine:[] () in
  ignore
    (Sched.spawn s.sched ~pid:0 ~name:"s0" (fun () ->
         B.Neq.bcast s.bc ~sender:0 ~slot:0 "from0";
         B.Neq.bcast s.bc ~sender:0 ~slot:1 "from0b"));
  ignore
    (Sched.spawn s.sched ~pid:2 ~name:"s2" (fun () ->
         B.Neq.bcast s.bc ~sender:2 ~slot:0 "from2"));
  run_ok s;
  let got = ref [] in
  ignore
    (Sched.spawn s.sched ~pid:1 ~name:"d1" (fun () ->
         got :=
           [
             B.Neq.deliver s.bc ~reader:1 ~sender:0 ~slot:0;
             B.Neq.deliver s.bc ~reader:1 ~sender:0 ~slot:1;
             B.Neq.deliver s.bc ~reader:1 ~sender:2 ~slot:0;
           ]));
  run_ok s;
  Alcotest.(check (list (option string)))
    "all slots delivered"
    [ Some "from0"; Some "from0b"; Some "from2" ]
    !got

(* UNIQUENESS: an equivocating Byzantine sender cannot make two correct
   processes deliver different messages — contrast with
   test_st_no_uniqueness in the message-passing suite. *)
let test_non_equivocation ~seed () =
  let n = 4 and f = 1 in
  let s = mk ~seed ~n ~f ~byzantine:[ 0 ] () in
  (* Byzantine sender 0 attacks its own instance with the sticky
     equivocation strategy (identity rotation for sender 0). *)
  ignore
    (Lnd_byz.Byz_sticky.spawn_equivocating_writer s.sched
       s.bc.B.Neq.instances.(0).(0).B.Neq.regs ~va:"a" ~vb:"b" ~flip_after:2 ());
  let results = Array.make n None in
  for pid = 1 to 3 do
    ignore
      (Sched.spawn s.sched ~pid ~name:(Printf.sprintf "d%d" pid) (fun () ->
           results.(pid) <- B.Neq.deliver s.bc ~reader:pid ~sender:0 ~slot:0;
           (* deliver twice: the second must agree with the first *)
           let again = B.Neq.deliver s.bc ~reader:pid ~sender:0 ~slot:0 in
           match (results.(pid), again) with
           | Some x, Some y when x <> y ->
               Alcotest.failf "p%d delivered %s then %s" pid x y
           | Some _, None -> Alcotest.failf "p%d lost its delivery" pid
           | _ -> ()))
  done;
  run_ok s;
  let delivered = Array.to_list results |> List.filter_map (fun x -> x) in
  match delivered with
  | [] -> ()
  | v :: rest ->
      List.iter
        (fun v' ->
          Alcotest.(check string) "no two correct deliver differently" v v')
        rest

(* deliver_blocking returns once the sender's write lands. *)
let test_deliver_blocking () =
  let s = mk ~n:4 ~f:1 ~byzantine:[] () in
  let got = ref "" in
  ignore
    (Sched.spawn s.sched ~pid:1 ~name:"d" (fun () ->
         got := B.Neq.deliver_blocking s.bc ~reader:1 ~sender:0 ~slot:0));
  ignore
    (Sched.spawn s.sched ~pid:0 ~name:"s" (fun () ->
         B.Neq.bcast s.bc ~sender:0 ~slot:0 "late"));
  run_ok s;
  Alcotest.(check string) "blocking delivery" "late" !got

let tests =
  [
    Alcotest.test_case "delivery" `Quick test_delivery;
    Alcotest.test_case "multi-sender multi-slot" `Quick test_multi_sender;
    Alcotest.test_case "non-equivocation (seed 31)" `Quick
      (test_non_equivocation ~seed:31);
    Alcotest.test_case "non-equivocation (seed 32)" `Quick
      (test_non_equivocation ~seed:32);
    Alcotest.test_case "non-equivocation (seed 33)" `Quick
      (test_non_equivocation ~seed:33);
    Alcotest.test_case "blocking delivery" `Quick test_deliver_blocking;
  ]
