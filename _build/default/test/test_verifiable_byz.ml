(* Adversarial behaviour of the verifiable register (Algorithm 1) with up
   to f Byzantine processes: Observations 11-13 and Theorem 14 under the
   attack strategies of lnd_byz. *)

module Sys = Lnd_verifiable.System
module Byz = Lnd_byz.Byz_verifiable
module Sched = Lnd_runtime.Sched
module Policy = Lnd_runtime.Policy
module History = Lnd_history.History
module V = Lnd_history.Spec.Verifiable_spec

let run_ok ?(max_steps = 4_000_000) (t : Sys.t) =
  match Sys.run ~max_steps t with
  | Sched.Quiescent ->
      List.iter
        (fun ((f : Sched.fiber), e) ->
          if t.correct.(f.Sched.pid) then
            Alcotest.failf "correct fiber %s failed: %s" f.Sched.fname
              (Printexc.to_string e))
        (Sched.failures t.sched)
  | Sched.Budget_exhausted ->
      Alcotest.fail "step budget exhausted (termination violated?)"
  | Sched.Condition_met -> ()

(* RELAY (Observation 13) over a recorded history: for every pair of
   completed VERIFY(v) operations by correct readers where the first
   returned true and precedes the second, the second must return true. *)
let check_relay (t : Sys.t) =
  let entries = History.complete_entries t.history in
  let verifies =
    List.filter_map
      (fun (e : (V.op, V.res) History.entry) ->
        if not t.correct.(e.pid) then None
        else
          match (e.op, e.ret) with
          | V.Verify v, Some (V.Verified b, rt) -> Some (v, b, e.inv, rt)
          | _ -> None)
      entries
  in
  List.iter
    (fun (v1, b1, _, rt1) ->
      List.iter
        (fun (v2, b2, inv2, _) ->
          if Lnd_support.Value.equal v1 v2 && b1 && rt1 < inv2 then
            Alcotest.(check bool)
              (Printf.sprintf "RELAY: VERIFY(%s)=true precedes VERIFY(%s)" v1
                 v2)
              true b2)
        verifies)
    verifies

(* UNFORGEABILITY: correct writer never signs "evil"; f colluders claim to
   witness it. No correct VERIFY("evil") may return true. *)
let test_unforgeability ~n ~f ~seed () =
  let byz = List.init f (fun i -> n - 1 - i) in
  let t = Sys.make ~policy:(Policy.random ~seed) ~n ~f ~byzantine:byz () in
  List.iter
    (fun pid -> ignore (Byz.spawn_false_witness t.sched t.regs ~pid ~v:"evil"))
    byz;
  ignore
    (Sys.client t ~pid:0 ~name:"writer" (fun () ->
         Sys.op_write t "good";
         ignore (Sys.op_sign t "good")));
  let evil_results = ref [] in
  for pid = 1 to n - 1 - f do
    ignore
      (Sys.client t ~pid ~name:(Printf.sprintf "v%d" pid) (fun () ->
           let r = Sys.op_verify t ~pid "evil" in
           evil_results := r :: !evil_results))
  done;
  run_ok t;
  List.iter
    (fun r ->
      Alcotest.(check bool) "UNFORGEABILITY: verify of unsigned value" false r)
    !evil_results;
  Alcotest.(check bool) "linearizable" true (Sys.byz_linearizable t)

(* VALIDITY under f instant naysayers: a signed value still verifies true
   for every correct reader. *)
let test_validity_vs_naysayers ~n ~f ~seed () =
  let byz = List.init f (fun i -> n - 1 - i) in
  let t = Sys.make ~policy:(Policy.random ~seed) ~n ~f ~byzantine:byz () in
  List.iter (fun pid -> ignore (Byz.spawn_naysayer t.sched t.regs ~pid)) byz;
  ignore
    (Sys.client t ~pid:0 ~name:"writer" (fun () ->
         Sys.op_write t "v";
         ignore (Sys.op_sign t "v")));
  run_ok t;
  for pid = 1 to n - 1 - f do
    let r = ref false in
    ignore
      (Sys.client t ~pid ~name:(Printf.sprintf "v%d" pid) (fun () ->
           r := Sys.op_verify t ~pid "v"));
    run_ok t;
    Alcotest.(check bool)
      (Printf.sprintf "VALIDITY vs naysayers at p%d" pid)
      true !r
  done;
  check_relay t

(* RELAY under f vote-flipping colluders racing many concurrent verifies. *)
let test_relay_vs_flipflop ~n ~f ~seed () =
  let byz = List.init f (fun i -> n - 1 - i) in
  let t = Sys.make ~policy:(Policy.random ~seed) ~n ~f ~byzantine:byz () in
  List.iter
    (fun pid -> ignore (Byz.spawn_flipflop t.sched t.regs ~pid ~v:"x"))
    byz;
  ignore
    (Sys.client t ~pid:0 ~name:"writer" (fun () ->
         Sys.op_write t "x";
         ignore (Sys.op_sign t "x")));
  for pid = 1 to n - 1 - f do
    ignore
      (Sys.client t ~pid ~name:(Printf.sprintf "v%d" pid) (fun () ->
           ignore (Sys.op_verify t ~pid "x");
           ignore (Sys.op_verify t ~pid "x")))
  done;
  run_ok t;
  check_relay t;
  Alcotest.(check bool) "linearizable" true (Sys.byz_linearizable t)

(* The title attack: a Byzantine writer signs, lets readers verify, then
   erases everything and denies. Relay and Byzantine linearizability must
   survive; every correct operation must terminate. *)
let test_lie_but_not_deny ~n ~f ~seed ~deny_after () =
  let t = Sys.make ~policy:(Policy.random ~seed) ~n ~f ~byzantine:[ 0 ] () in
  ignore (Byz.spawn_denying_writer t.sched t.regs ~v:"lie" ~deny_after ());
  for pid = 1 to n - 1 do
    ignore
      (Sys.client t ~pid ~name:(Printf.sprintf "v%d" pid) (fun () ->
           ignore (Sys.op_verify t ~pid "lie");
           ignore (Sys.op_verify t ~pid "lie")))
  done;
  run_ok t;
  check_relay t;
  Alcotest.(check bool)
    "linearizable with faulty writer" true (Sys.byz_linearizable t)

(* A writer that signs without writing: correct readers may verify the
   value; the history must still be explainable (Byzantine
   linearizability), and relay must hold. *)
let test_sign_without_write ~seed () =
  let n = 4 and f = 1 in
  let t = Sys.make ~policy:(Policy.random ~seed) ~n ~f ~byzantine:[ 0 ] () in
  ignore (Byz.spawn_sign_without_write t.sched t.regs ~v:"ghost");
  for pid = 1 to n - 1 do
    ignore
      (Sys.client t ~pid ~name:(Printf.sprintf "v%d" pid) (fun () ->
           ignore (Sys.op_verify t ~pid "ghost")))
  done;
  run_ok t;
  check_relay t;
  Alcotest.(check bool) "linearizable" true (Sys.byz_linearizable t)

(* An equivocating writer pushing two values: relay must hold per value and
   the history must linearize (the writer may legitimately sign both). *)
let test_equivocating_writer ~seed () =
  let n = 4 and f = 1 in
  let t = Sys.make ~policy:(Policy.random ~seed) ~n ~f ~byzantine:[ 0 ] () in
  ignore (Byz.spawn_equivocating_writer t.sched t.regs ~va:"a" ~vb:"b");
  for pid = 1 to n - 1 do
    ignore
      (Sys.client t ~pid ~name:(Printf.sprintf "v%d" pid) (fun () ->
           ignore (Sys.op_verify t ~pid "a");
           ignore (Sys.op_verify t ~pid "b")))
  done;
  run_ok t;
  check_relay t;
  Alcotest.(check bool) "linearizable" true (Sys.byz_linearizable t)

(* Ill-typed garbage from f processes: correct operations terminate and
   the history linearizes. *)
let test_garbage ~n ~f ~seed () =
  let byz = List.init f (fun i -> n - 1 - i) in
  let t = Sys.make ~policy:(Policy.random ~seed) ~n ~f ~byzantine:byz () in
  List.iter (fun pid -> ignore (Byz.spawn_garbage t.sched t.regs ~pid)) byz;
  ignore
    (Sys.client t ~pid:0 ~name:"writer" (fun () ->
         Sys.op_write t "ok";
         ignore (Sys.op_sign t "ok")));
  for pid = 1 to n - 1 - f do
    ignore
      (Sys.client t ~pid ~name:(Printf.sprintf "v%d" pid) (fun () ->
           ignore (Sys.op_verify t ~pid "ok");
           ignore (Sys.op_read t ~pid)))
  done;
  run_ok t;
  check_relay t;
  Alcotest.(check bool) "linearizable" true (Sys.byz_linearizable t)

(* Stale-stamp replayers: old witness evidence with fresh timestamps must
   not break relay or linearizability. *)
let test_stale_replayer ~n ~f ~seed () =
  let byz = List.init f (fun i -> n - 1 - i) in
  let t = Sys.make ~policy:(Policy.random ~seed) ~n ~f ~byzantine:byz () in
  List.iter
    (fun pid -> ignore (Byz.spawn_stale_replayer t.sched t.regs ~pid))
    byz;
  ignore
    (Sys.client t ~pid:0 ~name:"writer" (fun () ->
         Sys.op_write t "s";
         ignore (Sys.op_sign t "s")));
  for pid = 1 to n - 1 - f do
    ignore
      (Sys.client t ~pid ~name:(Printf.sprintf "v%d" pid) (fun () ->
           ignore (Sys.op_verify t ~pid "s");
           ignore (Sys.op_verify t ~pid "s")))
  done;
  run_ok t;
  check_relay t;
  Alcotest.(check bool) "linearizable" true (Sys.byz_linearizable t)

(* Selective responders starving odd-numbered readers: every VERIFY still
   terminates (the correct helpers answer everyone). *)
let test_selective_starvation ~n ~f ~seed () =
  let byz = List.init f (fun i -> n - 1 - i) in
  let t = Sys.make ~policy:(Policy.random ~seed) ~n ~f ~byzantine:byz () in
  List.iter
    (fun pid -> ignore (Byz.spawn_selective t.sched t.regs ~pid ~v:"s"))
    byz;
  ignore
    (Sys.client t ~pid:0 ~name:"writer" (fun () ->
         Sys.op_write t "s";
         ignore (Sys.op_sign t "s")));
  for pid = 1 to n - 1 - f do
    ignore
      (Sys.client t ~pid ~name:(Printf.sprintf "v%d" pid) (fun () ->
           (* odd readers are the starved ones; all must terminate *)
           ignore (Sys.op_verify t ~pid "s")))
  done;
  run_ok t;
  check_relay t;
  Alcotest.(check bool) "linearizable" true (Sys.byz_linearizable t)

(* Crash faults are a special case of Byzantine: f processes that never
   take a single step. All correct operations must still terminate. *)
let test_crashed_processes ~n ~f ~seed () =
  let byz = List.init f (fun i -> n - 1 - i) in
  let t = Sys.make ~policy:(Policy.random ~seed) ~n ~f ~byzantine:byz () in
  (* spawn nothing for the crashed pids *)
  ignore
    (Sys.client t ~pid:0 ~name:"writer" (fun () ->
         Sys.op_write t "v";
         ignore (Sys.op_sign t "v")));
  for pid = 1 to n - 1 - f do
    ignore
      (Sys.client t ~pid ~name:(Printf.sprintf "v%d" pid) (fun () ->
           ignore (Sys.op_verify t ~pid "v")))
  done;
  run_ok t;
  Alcotest.(check bool) "linearizable" true (Sys.byz_linearizable t)

(* A reader crashes mid-VERIFY: its operation stays incomplete in the
   history; Byzantine linearizability must still hold for the rest (the
   checker may drop or complete the pending op, Definition 2). *)
let test_reader_crash_mid_verify ~seed () =
  let n = 4 and f = 1 in
  (* p3 is the crasher: counts as the one Byzantine process *)
  let t = Sys.make ~policy:(Policy.random ~seed) ~n ~f ~byzantine:[ 3 ] () in
  ignore
    (Sys.client t ~pid:0 ~name:"writer" (fun () ->
         Sys.op_write t "c";
         ignore (Sys.op_sign t "c")));
  (* the crasher still RUNS the protocol (it is not malicious, just
     doomed): give it a help daemon and a verify it will never finish *)
  ignore
    (Sched.spawn t.sched ~pid:3 ~name:"help3" ~daemon:true (fun () ->
         Lnd_verifiable.Verifiable.help t.regs ~pid:3));
  let victim =
    Sys.client t ~pid:3 ~name:"doomed" (fun () ->
        ignore (Sys.op_verify t ~pid:3 "c"))
  in
  (* let it take a few steps, then crash it *)
  ignore
    (Sys.run ~max_steps:200_000
       ~until:(fun sc -> Sched.steps sc > 50)
       t);
  Sched.kill victim;
  for pid = 1 to 2 do
    ignore
      (Sys.client t ~pid ~name:(Printf.sprintf "v%d" pid) (fun () ->
           ignore (Sys.op_verify t ~pid "c")))
  done;
  run_ok t;
  Alcotest.(check bool)
    "incomplete op recorded" true
    (List.length (History.incomplete_entries t.history) <= 1);
  Alcotest.(check bool)
    "linearizable with crashed reader" true (Sys.byz_linearizable t)

let seeds = [ 101; 202; 303 ]

let tests =
  List.concat
    [
      List.map
        (fun s ->
          Alcotest.test_case
            (Printf.sprintf "unforgeability n=4 f=1 (seed %d)" s)
            `Quick
            (test_unforgeability ~n:4 ~f:1 ~seed:s))
        seeds;
      [
        Alcotest.test_case "unforgeability n=7 f=2" `Quick
          (test_unforgeability ~n:7 ~f:2 ~seed:7);
        Alcotest.test_case "unforgeability n=10 f=3" `Quick
          (test_unforgeability ~n:10 ~f:3 ~seed:8);
        Alcotest.test_case "validity vs naysayers n=4" `Quick
          (test_validity_vs_naysayers ~n:4 ~f:1 ~seed:21);
        Alcotest.test_case "validity vs naysayers n=7" `Quick
          (test_validity_vs_naysayers ~n:7 ~f:2 ~seed:22);
      ];
      List.map
        (fun s ->
          Alcotest.test_case
            (Printf.sprintf "relay vs flip-flop n=4 (seed %d)" s)
            `Quick
            (test_relay_vs_flipflop ~n:4 ~f:1 ~seed:s))
        seeds;
      [
        Alcotest.test_case "relay vs flip-flop n=7 f=2" `Quick
          (test_relay_vs_flipflop ~n:7 ~f:2 ~seed:31);
      ];
      List.map
        (fun s ->
          Alcotest.test_case
            (Printf.sprintf "lie-but-not-deny n=4 (seed %d)" s)
            `Quick
            (test_lie_but_not_deny ~n:4 ~f:1 ~seed:s ~deny_after:2))
        seeds;
      [
        Alcotest.test_case "lie-but-not-deny n=7 f=2" `Quick
          (test_lie_but_not_deny ~n:7 ~f:2 ~seed:41 ~deny_after:3);
        Alcotest.test_case "sign without write" `Quick
          (test_sign_without_write ~seed:51);
        Alcotest.test_case "equivocating writer" `Quick
          (test_equivocating_writer ~seed:61);
        Alcotest.test_case "garbage writers n=4" `Quick
          (test_garbage ~n:4 ~f:1 ~seed:71);
        Alcotest.test_case "garbage writers n=7" `Quick
          (test_garbage ~n:7 ~f:2 ~seed:72);
        Alcotest.test_case "crashed processes n=4" `Quick
          (test_crashed_processes ~n:4 ~f:1 ~seed:81);
        Alcotest.test_case "crashed processes n=7" `Quick
          (test_crashed_processes ~n:7 ~f:2 ~seed:82);
        Alcotest.test_case "stale replayer n=4" `Quick
          (test_stale_replayer ~n:4 ~f:1 ~seed:91);
        Alcotest.test_case "stale replayer n=7" `Quick
          (test_stale_replayer ~n:7 ~f:2 ~seed:92);
        Alcotest.test_case "selective starvation n=4" `Quick
          (test_selective_starvation ~n:4 ~f:1 ~seed:93);
        Alcotest.test_case "selective starvation n=7" `Quick
          (test_selective_starvation ~n:7 ~f:2 ~seed:94);
        Alcotest.test_case "reader crash mid-verify (seed 96)" `Quick
          (test_reader_crash_mid_verify ~seed:96);
        Alcotest.test_case "reader crash mid-verify (seed 97)" `Quick
          (test_reader_crash_mid_verify ~seed:97);
        (* larger configurations *)
        Alcotest.test_case "unforgeability n=13 f=4" `Slow
          (test_unforgeability ~n:13 ~f:4 ~seed:201);
        Alcotest.test_case "relay vs flip-flop n=10 f=3" `Slow
          (test_relay_vs_flipflop ~n:10 ~f:3 ~seed:202);
        Alcotest.test_case "lie-but-not-deny n=10 f=3" `Slow
          (test_lie_but_not_deny ~n:10 ~f:3 ~seed:203 ~deny_after:4);
        Alcotest.test_case "garbage n=10 f=3" `Slow
          (test_garbage ~n:10 ~f:3 ~seed:204);
      ];
    ]
