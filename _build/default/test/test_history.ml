(* Unit tests for histories, sequential specs, and the generic
   linearizability checker on handcrafted histories. *)

module History = Lnd_history.History
module Spec = Lnd_history.Spec
module R = Spec.Register_spec
module S = Spec.Sticky_spec
module RC = Spec.Checker (R)
module SC = Spec.Checker (S)

let entry pid op inv ret rt : (R.op, R.res) History.entry =
  { History.pid; op; inv; ret = Some (ret, rt) }

let hist entries : (R.op, R.res) History.t = { History.entries }

(* Sequential write-then-read is linearizable. *)
let test_sequential_ok () =
  let h =
    hist [ entry 0 (R.Write "a") 1 R.Done 2; entry 1 R.Read 3 (R.Val "a") 4 ]
  in
  Alcotest.(check bool) "linearizable" true (RC.linearizable h)

(* Reading a stale value after a completed write is not linearizable. *)
let test_stale_read () =
  let h =
    hist
      [
        entry 0 (R.Write "a") 1 R.Done 2;
        entry 1 R.Read 3 (R.Val Lnd_support.Value.v0) 4;
      ]
  in
  Alcotest.(check bool) "not linearizable" false (RC.linearizable h)

(* A read concurrent with a write may return old or new value. *)
let test_concurrent_read () =
  let old_ok =
    hist
      [
        entry 0 (R.Write "a") 1 R.Done 10;
        entry 1 R.Read 2 (R.Val Lnd_support.Value.v0) 3;
      ]
  in
  let new_ok =
    hist [ entry 0 (R.Write "a") 1 R.Done 10; entry 1 R.Read 2 (R.Val "a") 3 ]
  in
  Alcotest.(check bool) "old value ok" true (RC.linearizable old_ok);
  Alcotest.(check bool) "new value ok" true (RC.linearizable new_ok)

(* New-old inversion between two sequential reads is not linearizable. *)
let test_new_old_inversion () =
  let h =
    hist
      [
        entry 0 (R.Write "a") 1 R.Done 20;
        entry 1 R.Read 2 (R.Val "a") 3;
        entry 2 R.Read 4 (R.Val Lnd_support.Value.v0) 5;
      ]
  in
  Alcotest.(check bool) "inversion rejected" false (RC.linearizable h)

(* Incomplete operations may be dropped or completed. *)
let test_incomplete () =
  let w : (R.op, R.res) History.entry =
    { History.pid = 0; op = R.Write "a"; inv = 1; ret = None }
  in
  (* a read overlapping the incomplete write may see either value *)
  let h1 = hist [ w; entry 1 R.Read 2 (R.Val "a") 3 ] in
  let h2 = hist [ w; entry 1 R.Read 2 (R.Val Lnd_support.Value.v0) 3 ] in
  Alcotest.(check bool) "took effect" true (RC.linearizable h1);
  Alcotest.(check bool) "dropped" true (RC.linearizable h2)

(* Sticky spec: only the first write sticks. *)
let sentry pid op inv ret rt : (S.op, S.res) History.entry =
  { History.pid; op; inv; ret = Some (ret, rt) }

let test_sticky_spec () =
  let h : (S.op, S.res) History.t =
    {
      History.entries =
        [
          sentry 0 (S.Write "a") 1 S.Done 2;
          sentry 0 (S.Write "b") 3 S.Done 4;
          sentry 1 S.Read 5 (S.Val (Some "a")) 6;
        ];
    }
  in
  Alcotest.(check bool) "first write sticks" true (SC.linearizable h);
  let h2 : (S.op, S.res) History.t =
    {
      History.entries =
        [
          sentry 0 (S.Write "a") 1 S.Done 2;
          sentry 0 (S.Write "b") 3 S.Done 4;
          sentry 1 S.Read 5 (S.Val (Some "b")) 6;
        ];
    }
  in
  Alcotest.(check bool) "second write must not stick" false (SC.linearizable h2)

(* Precedence helpers. *)
let test_precedence () =
  let a = entry 0 (R.Write "a") 1 R.Done 2 in
  let b = entry 1 R.Read 3 (R.Val "a") 4 in
  let c = entry 2 R.Read 3 (R.Val "a") 10 in
  Alcotest.(check bool) "a precedes b" true (History.precedes a b);
  Alcotest.(check bool) "b not precedes a" false (History.precedes b a);
  Alcotest.(check bool) "b concurrent c" false
    (History.precedes b c || History.precedes c b)

(* Restriction to correct processes. *)
let test_restrict () =
  let h =
    hist
      [
        entry 0 (R.Write "a") 1 R.Done 2;
        entry 1 R.Read 3 (R.Val "a") 4;
        entry 2 R.Read 5 (R.Val "zzz") 6;
      ]
  in
  let hc = History.restrict h ~correct:(fun pid -> pid <> 2) in
  Alcotest.(check int) "restricted size" 2 (List.length (History.entries hc));
  Alcotest.(check bool) "restricted linearizable" true (RC.linearizable hc)

let tests =
  [
    Alcotest.test_case "sequential write/read" `Quick test_sequential_ok;
    Alcotest.test_case "stale read rejected" `Quick test_stale_read;
    Alcotest.test_case "concurrent read flexible" `Quick test_concurrent_read;
    Alcotest.test_case "new-old inversion rejected" `Quick
      test_new_old_inversion;
    Alcotest.test_case "incomplete ops" `Quick test_incomplete;
    Alcotest.test_case "sticky sequential spec" `Quick test_sticky_spec;
    Alcotest.test_case "precedence" `Quick test_precedence;
    Alcotest.test_case "restrict to correct" `Quick test_restrict;
  ]
