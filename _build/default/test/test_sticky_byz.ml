(* Adversarial behaviour of the sticky register (Algorithm 2):
   Observations 16-18 and Theorem 19 under the strategies of lnd_byz. *)

module Sys = Lnd_sticky.System
module Byz = Lnd_byz.Byz_sticky
module Sched = Lnd_runtime.Sched
module Policy = Lnd_runtime.Policy
module History = Lnd_history.History
module S = Lnd_history.Spec.Sticky_spec

let run_ok ?(max_steps = 4_000_000) (t : Sys.t) =
  match Sys.run ~max_steps t with
  | Sched.Quiescent ->
      List.iter
        (fun ((f : Sched.fiber), e) ->
          if t.correct.(f.Sched.pid) then
            Alcotest.failf "correct fiber %s failed: %s" f.Sched.fname
              (Printexc.to_string e))
        (Sched.failures t.sched)
  | Sched.Budget_exhausted ->
      Alcotest.fail "step budget exhausted (termination violated?)"
  | Sched.Condition_met -> ()

(* UNIQUENESS (Observation 18) over a recorded history: if a correct READ
   returned v ≠ ⊥ and precedes another correct READ, the later READ also
   returns v; and no two correct reads return different non-⊥ values. *)
let check_uniqueness (t : Sys.t) =
  let reads =
    List.filter_map
      (fun (e : (S.op, S.res) History.entry) ->
        if not t.correct.(e.pid) then None
        else
          match (e.op, e.ret) with
          | S.Read, Some (S.Val r, rt) -> Some (r, e.inv, rt)
          | _ -> None)
      (History.complete_entries t.history)
  in
  (* agreement *)
  let non_bot = List.filter_map (fun (r, _, _) -> r) reads in
  (match non_bot with
  | [] -> ()
  | v :: rest ->
      List.iter
        (fun v' -> Alcotest.(check string) "reads agree" v v')
        rest);
  (* temporal stickiness *)
  List.iter
    (fun (r1, _, rt1) ->
      List.iter
        (fun (r2, inv2, _) ->
          match r1 with
          | Some _ when rt1 < inv2 ->
              Alcotest.(check bool)
                "UNIQUENESS: non-⊥ read not followed by ⊥ read" true
                (r2 <> None)
          | _ -> ())
        reads)
    reads

(* Equivocating Byzantine writer pushing two values: correct readers must
   never disagree. *)
let test_equivocation ~n ~f ~seed () =
  let t = Sys.make ~policy:(Policy.random ~seed) ~n ~f ~byzantine:[ 0 ] () in
  ignore
    (Byz.spawn_equivocating_writer t.sched t.regs ~va:"a" ~vb:"b"
       ~flip_after:3 ());
  for pid = 1 to n - 1 do
    ignore
      (Sys.client t ~pid ~name:(Printf.sprintf "r%d" pid) (fun () ->
           ignore (Sys.op_read t ~pid);
           ignore (Sys.op_read t ~pid)))
  done;
  run_ok t;
  check_uniqueness t;
  Alcotest.(check bool)
    "linearizable with faulty writer" true (Sys.byz_linearizable t)

(* Split collusion: the writer equivocates and f-1 colluders back the
   second value. Still no disagreement among correct readers. *)
let test_equivocation_with_colluders ~seed () =
  let n = 7 and f = 2 in
  let t = Sys.make ~policy:(Policy.random ~seed) ~n ~f ~byzantine:[ 0; 6 ] () in
  ignore
    (Byz.spawn_equivocating_writer t.sched t.regs ~va:"a" ~vb:"b"
       ~flip_after:2 ());
  ignore (Byz.spawn_false_witness t.sched t.regs ~pid:6 ~v:"b");
  for pid = 1 to 5 do
    ignore
      (Sys.client t ~pid ~name:(Printf.sprintf "r%d" pid) (fun () ->
           ignore (Sys.op_read t ~pid);
           ignore (Sys.op_read t ~pid)))
  done;
  run_ok t;
  check_uniqueness t;
  Alcotest.(check bool) "linearizable" true (Sys.byz_linearizable t)

(* Denying writer: writes, lets the value spread, then erases its echo
   register. Stickiness must survive the denial. *)
let test_deny ~n ~f ~seed () =
  let t = Sys.make ~policy:(Policy.random ~seed) ~n ~f ~byzantine:[ 0 ] () in
  ignore (Byz.spawn_denying_writer t.sched t.regs ~v:"kept" ~deny_after:4 ());
  for pid = 1 to n - 1 do
    ignore
      (Sys.client t ~pid ~name:(Printf.sprintf "r%d" pid) (fun () ->
           ignore (Sys.op_read t ~pid);
           ignore (Sys.op_read t ~pid)))
  done;
  run_ok t;
  check_uniqueness t;
  Alcotest.(check bool) "linearizable" true (Sys.byz_linearizable t)

(* f colluders fabricate a value nobody wrote: no correct read may return
   it (UNFORGEABILITY, Observation 17). *)
let test_fabricated_value ~n ~f ~seed () =
  let byz = List.init f (fun i -> n - 1 - i) in
  let t = Sys.make ~policy:(Policy.random ~seed) ~n ~f ~byzantine:byz () in
  List.iter
    (fun pid -> ignore (Byz.spawn_false_witness t.sched t.regs ~pid ~v:"fake"))
    byz;
  let results = ref [] in
  for pid = 1 to n - 1 - f do
    ignore
      (Sys.client t ~pid ~name:(Printf.sprintf "r%d" pid) (fun () ->
           results := Sys.op_read t ~pid :: !results))
  done;
  run_ok t;
  List.iter
    (fun r ->
      Alcotest.(check bool)
        "UNFORGEABILITY: fabricated value never read" true (r <> Some "fake"))
    !results;
  Alcotest.(check bool) "linearizable" true (Sys.byz_linearizable t)

(* Correct writer vs f naysayers: WRITE completes and later reads return
   the value (VALIDITY, Observation 16). *)
let test_validity_vs_naysayers ~n ~f ~seed () =
  let byz = List.init f (fun i -> n - 1 - i) in
  let t = Sys.make ~policy:(Policy.random ~seed) ~n ~f ~byzantine:byz () in
  List.iter (fun pid -> ignore (Byz.spawn_naysayer t.sched t.regs ~pid)) byz;
  ignore (Sys.client t ~pid:0 ~name:"writer" (fun () -> Sys.op_write t "v"));
  run_ok t;
  for pid = 1 to n - 1 - f do
    let got = ref None in
    ignore
      (Sys.client t ~pid ~name:(Printf.sprintf "r%d" pid) (fun () ->
           got := Sys.op_read t ~pid));
    run_ok t;
    Alcotest.(check (option string))
      (Printf.sprintf "VALIDITY vs naysayers at p%d" pid)
      (Some "v") !got
  done

(* Flip-flopping colluders racing concurrent reads. *)
let test_flipflop ~seed () =
  let n = 4 and f = 1 in
  let t = Sys.make ~policy:(Policy.random ~seed) ~n ~f ~byzantine:[ 3 ] () in
  ignore (Byz.spawn_flipflop t.sched t.regs ~pid:3 ~v:"w");
  ignore (Sys.client t ~pid:0 ~name:"writer" (fun () -> Sys.op_write t "w"));
  for pid = 1 to 2 do
    ignore
      (Sys.client t ~pid ~name:(Printf.sprintf "r%d" pid) (fun () ->
           ignore (Sys.op_read t ~pid);
           ignore (Sys.op_read t ~pid)))
  done;
  run_ok t;
  check_uniqueness t;
  Alcotest.(check bool) "linearizable" true (Sys.byz_linearizable t)

(* Garbage writers: correct operations terminate and linearize. *)
let test_garbage ~n ~f ~seed () =
  let byz = List.init f (fun i -> n - 1 - i) in
  let t = Sys.make ~policy:(Policy.random ~seed) ~n ~f ~byzantine:byz () in
  List.iter (fun pid -> ignore (Byz.spawn_garbage t.sched t.regs ~pid)) byz;
  ignore (Sys.client t ~pid:0 ~name:"writer" (fun () -> Sys.op_write t "g"));
  for pid = 1 to n - 1 - f do
    ignore
      (Sys.client t ~pid ~name:(Printf.sprintf "r%d" pid) (fun () ->
           ignore (Sys.op_read t ~pid)))
  done;
  run_ok t;
  check_uniqueness t;
  Alcotest.(check bool) "linearizable" true (Sys.byz_linearizable t)

(* Crashed processes (a special case of Byzantine). *)
let test_crashed ~n ~f ~seed () =
  let byz = List.init f (fun i -> n - 1 - i) in
  let t = Sys.make ~policy:(Policy.random ~seed) ~n ~f ~byzantine:byz () in
  ignore (Sys.client t ~pid:0 ~name:"writer" (fun () -> Sys.op_write t "c"));
  for pid = 1 to n - 1 - f do
    ignore
      (Sys.client t ~pid ~name:(Printf.sprintf "r%d" pid) (fun () ->
           ignore (Sys.op_read t ~pid)))
  done;
  run_ok t;
  check_uniqueness t;
  Alcotest.(check bool) "linearizable" true (Sys.byz_linearizable t)

(* Stale replayer: frozen first-observation answers with fresh stamps
   must not break uniqueness or linearizability. *)
let test_stale_replayer ~seed () =
  let n = 4 and f = 1 in
  let t = Sys.make ~policy:(Policy.random ~seed) ~n ~f ~byzantine:[ 3 ] () in
  ignore (Byz.spawn_stale_replayer t.sched t.regs ~pid:3);
  ignore (Sys.client t ~pid:0 ~name:"writer" (fun () -> Sys.op_write t "z"));
  for pid = 1 to 2 do
    ignore
      (Sys.client t ~pid ~name:(Printf.sprintf "r%d" pid) (fun () ->
           ignore (Sys.op_read t ~pid);
           ignore (Sys.op_read t ~pid)))
  done;
  run_ok t;
  check_uniqueness t;
  Alcotest.(check bool) "linearizable" true (Sys.byz_linearizable t)

(* The writer crashes mid-WRITE (during its witness wait): readers must
   still agree (they may all see the value or all see ⊥-then-value, but
   never disagree), and the history must linearize with the writer
   treated as faulty (crash ⊂ Byzantine). *)
let test_writer_crash_mid_write ~seed () =
  let n = 4 and f = 1 in
  let t = Sys.make ~policy:(Policy.random ~seed) ~n ~f ~byzantine:[ 0 ] () in
  (* the crasher runs the real protocol until it dies *)
  ignore
    (Sched.spawn t.sched ~pid:0 ~name:"help0" ~daemon:true (fun () ->
         Lnd_sticky.Sticky.help t.regs ~pid:0));
  let victim =
    Sched.spawn t.sched ~pid:0 ~name:"doomed-writer" (fun () ->
        Lnd_sticky.Sticky.write t.writer "w")
  in
  ignore
    (Sys.run ~max_steps:200_000
       ~until:(fun sc -> Sched.steps sc > 30)
       t);
  Sched.kill victim;
  for pid = 1 to 3 do
    ignore
      (Sys.client t ~pid ~name:(Printf.sprintf "r%d" pid) (fun () ->
           ignore (Sys.op_read t ~pid);
           ignore (Sys.op_read t ~pid)))
  done;
  run_ok t;
  check_uniqueness t;
  Alcotest.(check bool)
    "linearizable with crashed writer" true (Sys.byz_linearizable t)

let seeds = [ 11; 22; 33 ]

let tests =
  List.concat
    [
      List.map
        (fun s ->
          Alcotest.test_case
            (Printf.sprintf "equivocation n=4 (seed %d)" s)
            `Quick
            (test_equivocation ~n:4 ~f:1 ~seed:s))
        seeds;
      [
        Alcotest.test_case "equivocation n=7 f=2" `Quick
          (test_equivocation ~n:7 ~f:2 ~seed:44);
        Alcotest.test_case "equivocation with colluders" `Quick
          (test_equivocation_with_colluders ~seed:55);
      ];
      List.map
        (fun s ->
          Alcotest.test_case (Printf.sprintf "deny n=4 (seed %d)" s) `Quick
            (test_deny ~n:4 ~f:1 ~seed:s))
        seeds;
      [
        Alcotest.test_case "deny n=7 f=2" `Quick (test_deny ~n:7 ~f:2 ~seed:66);
        Alcotest.test_case "fabricated value n=4" `Quick
          (test_fabricated_value ~n:4 ~f:1 ~seed:77);
        Alcotest.test_case "fabricated value n=7" `Quick
          (test_fabricated_value ~n:7 ~f:2 ~seed:78);
        Alcotest.test_case "validity vs naysayers n=4" `Quick
          (test_validity_vs_naysayers ~n:4 ~f:1 ~seed:88);
        Alcotest.test_case "validity vs naysayers n=7" `Quick
          (test_validity_vs_naysayers ~n:7 ~f:2 ~seed:89);
        Alcotest.test_case "flip-flop colluder" `Quick (test_flipflop ~seed:99);
        Alcotest.test_case "garbage n=4" `Quick (test_garbage ~n:4 ~f:1 ~seed:111);
        Alcotest.test_case "garbage n=7" `Quick (test_garbage ~n:7 ~f:2 ~seed:112);
        Alcotest.test_case "crashed n=4" `Quick (test_crashed ~n:4 ~f:1 ~seed:121);
        Alcotest.test_case "crashed n=7" `Quick (test_crashed ~n:7 ~f:2 ~seed:122);
        Alcotest.test_case "stale replayer (seed 141)" `Quick
          (test_stale_replayer ~seed:141);
        Alcotest.test_case "stale replayer (seed 142)" `Quick
          (test_stale_replayer ~seed:142);
        Alcotest.test_case "writer crash mid-write (seed 131)" `Quick
          (test_writer_crash_mid_write ~seed:131);
        Alcotest.test_case "writer crash mid-write (seed 132)" `Quick
          (test_writer_crash_mid_write ~seed:132);
        Alcotest.test_case "writer crash mid-write (seed 133)" `Quick
          (test_writer_crash_mid_write ~seed:133);
        (* larger configurations *)
        Alcotest.test_case "equivocation n=10 f=3" `Slow
          (test_equivocation ~n:10 ~f:3 ~seed:211);
        Alcotest.test_case "deny n=10 f=3" `Slow
          (test_deny ~n:10 ~f:3 ~seed:212);
        Alcotest.test_case "fabricated value n=13 f=4" `Slow
          (test_fabricated_value ~n:13 ~f:4 ~seed:213);
      ];
    ]
