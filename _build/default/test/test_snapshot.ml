(* The signed snapshot object on verifiable registers (Section 1.1
   application). *)

open Lnd_support
open Lnd_shm
open Lnd_runtime
module Snap = Lnd_snapshot.Snapshot

type sys = { sched : Sched.t; snap : Snap.t; n : int }

let mk ?(seed = 3) ~n ~f ~byzantine () : sys =
  let space = Space.create ~n in
  let sched = Sched.create ~space ~choose:(Policy.random ~seed) in
  let snap = Snap.create space sched ~n ~f ~byzantine () in
  { sched; snap; n }

let run_ok ?(max_steps = 8_000_000) s =
  match Sched.run ~max_steps s.sched with
  | Sched.Quiescent ->
      (match Sched.failures s.sched with
      | [] -> ()
      | ((f : Sched.fiber), e) :: _ ->
          Alcotest.failf "fiber %s failed: %s" f.Sched.fname
            (Printexc.to_string e))
  | Sched.Budget_exhausted -> Alcotest.fail "step budget exhausted"
  | Sched.Condition_met -> ()

let varray = Alcotest.(array string)

(* All processes update, then a scan sees every signed value. *)
let test_update_scan () =
  let n = 4 and f = 1 in
  let s = mk ~n ~f ~byzantine:[] () in
  for pid = 0 to n - 1 do
    ignore
      (Sched.spawn s.sched ~pid ~name:(Printf.sprintf "u%d" pid) (fun () ->
           Snap.update s.snap ~pid (Printf.sprintf "seg%d" pid)))
  done;
  run_ok s;
  let view = ref [||] in
  ignore
    (Sched.spawn s.sched ~pid:1 ~name:"scan" (fun () ->
         view := Snap.scan s.snap ~pid:1));
  run_ok s;
  Alcotest.check varray "full view"
    [| "seg0"; "seg1"; "seg2"; "seg3" |]
    !view

(* Scan before any update returns all-v0. *)
let test_empty_scan () =
  let s = mk ~n:4 ~f:1 ~byzantine:[] () in
  let view = ref [||] in
  ignore
    (Sched.spawn s.sched ~pid:2 ~name:"scan" (fun () ->
         view := Snap.scan s.snap ~pid:2));
  run_ok s;
  Alcotest.check varray "empty view"
    (Array.make 4 Value.v0)
    !view

(* UNFORGEABILITY: a Byzantine segment owner writes values without
   signing them; scans never report them. *)
let test_unsigned_invisible () =
  let n = 4 and f = 1 in
  let s = mk ~n ~f ~byzantine:[ 3 ] () in
  (* Byzantine p3 writes into its segment's R* but never signs *)
  ignore
    (Sched.spawn s.sched ~pid:3 ~name:"byz" (fun () ->
         let seg = s.snap.Snap.segments.(3) in
         Cell.write seg.Snap.seg_regs.Lnd_verifiable.Verifiable.rstar
           (Univ.inj Codecs.value "unsigned")));
  ignore
    (Sched.spawn s.sched ~pid:0 ~name:"u0" (fun () ->
         Snap.update s.snap ~pid:0 "real"));
  run_ok s;
  let view = ref [||] in
  ignore
    (Sched.spawn s.sched ~pid:1 ~name:"scan" (fun () ->
         view := Snap.scan s.snap ~pid:1));
  run_ok s;
  Alcotest.(check string) "p0 segment visible" "real" (!view).(0);
  Alcotest.(check string) "unsigned segment reads v0" Value.v0 (!view).(3)

(* Sequential scans are monotone per segment once writers are quiet. *)
let test_scan_stability () =
  let n = 4 and f = 1 in
  let s = mk ~seed:9 ~n ~f ~byzantine:[] () in
  for pid = 0 to 1 do
    ignore
      (Sched.spawn s.sched ~pid ~name:(Printf.sprintf "u%d" pid) (fun () ->
           Snap.update s.snap ~pid (Printf.sprintf "v%d" pid)))
  done;
  run_ok s;
  let v1 = ref [||] and v2 = ref [||] in
  ignore
    (Sched.spawn s.sched ~pid:2 ~name:"scan2" (fun () ->
         v1 := Snap.scan s.snap ~pid:2));
  run_ok s;
  ignore
    (Sched.spawn s.sched ~pid:3 ~name:"scan3" (fun () ->
         v2 := Snap.scan s.snap ~pid:3));
  run_ok s;
  Alcotest.check varray "stable across scanners" !v1 !v2

(* Concurrent updates and scans terminate and scans only contain signed
   values. *)
let test_concurrent_updates ~seed () =
  let n = 4 and f = 1 in
  let s = mk ~seed ~n ~f ~byzantine:[] () in
  let views = ref [] in
  for pid = 0 to n - 1 do
    ignore
      (Sched.spawn s.sched ~pid ~name:(Printf.sprintf "c%d" pid) (fun () ->
           Snap.update s.snap ~pid (Printf.sprintf "x%d" pid);
           let v = Snap.scan s.snap ~pid in
           views := v :: !views))
  done;
  run_ok s;
  List.iter
    (fun view ->
      Array.iteri
        (fun i v ->
          Alcotest.(check bool)
            "segment is v0 or owner's signed value" true
            (v = Value.v0 || v = Printf.sprintf "x%d" i))
        view)
    !views

let tests =
  [
    Alcotest.test_case "update then scan" `Quick test_update_scan;
    Alcotest.test_case "empty scan" `Quick test_empty_scan;
    Alcotest.test_case "unsigned values invisible" `Quick
      test_unsigned_invisible;
    Alcotest.test_case "scan stability" `Quick test_scan_stability;
    Alcotest.test_case "concurrent updates (seed 41)" `Quick
      (test_concurrent_updates ~seed:41);
    Alcotest.test_case "concurrent updates (seed 42)" `Quick
      (test_concurrent_updates ~seed:42);
  ]
