(* The scenario fuzzer: every generated scenario must pass all its
   property checks. One seed = one deterministic scenario, so a failure
   message names the exact reproducer. *)

module Fuzz = Lnd_fuzz.Fuzz

let run_range ~from ~count () =
  for seed = from to from + count - 1 do
    let scenario = Fuzz.generate seed in
    match Fuzz.run scenario with
    | Ok _ -> ()
    | Error msg ->
        Alcotest.failf "fuzz failure [%s]: %s"
          (Format.asprintf "%a" Fuzz.pp_scenario scenario)
          msg
  done

(* The generator covers both targets and many adversaries within a modest
   seed range (guards against a degenerate generator). *)
let test_generator_coverage () =
  let scenarios = List.init 200 Fuzz.generate in
  let targets =
    List.sort_uniq compare
      (List.map (fun (s : Fuzz.scenario) -> s.Fuzz.target) scenarios)
  in
  let adversaries =
    List.sort_uniq compare
      (List.map (fun (s : Fuzz.scenario) -> s.Fuzz.adversary) scenarios)
  in
  Alcotest.(check int) "both targets generated" 2 (List.length targets);
  Alcotest.(check bool)
    "at least 7 adversary kinds generated" true
    (List.length adversaries >= 7)

let test_determinism () =
  (* same seed, same scenario *)
  Alcotest.(check bool)
    "generation deterministic" true
    (Fuzz.generate 12345 = Fuzz.generate 12345)

let tests =
  [
    Alcotest.test_case "generator coverage" `Quick test_generator_coverage;
    Alcotest.test_case "generator determinism" `Quick test_determinism;
    Alcotest.test_case "seeds 0-39" `Quick (run_range ~from:0 ~count:40);
    Alcotest.test_case "seeds 40-79" `Quick (run_range ~from:40 ~count:40);
    Alcotest.test_case "seeds 80-119" `Slow (run_range ~from:80 ~count:40);
    Alcotest.test_case "seeds 120-159" `Slow (run_range ~from:120 ~count:40);
    Alcotest.test_case "seeds 160-199" `Slow (run_range ~from:160 ~count:40);
    Alcotest.test_case "seeds 200-239" `Slow (run_range ~from:200 ~count:40);
  ]
