(* Unit tests for the support substrate: universal values, PRNG, value
   domain. *)

open Lnd_support

let test_univ_roundtrip () =
  let u = Univ.inj Univ.int 42 in
  Alcotest.(check (option int)) "int roundtrip" (Some 42) (Univ.prj Univ.int u);
  Alcotest.(check (option string))
    "wrong key" None
    (Univ.prj Univ.string u);
  Alcotest.(check string) "key name" "int" (Univ.key_name u)

let test_univ_default () =
  let junk = Univ.inj Univ.garbage "zzz" in
  Alcotest.(check int) "defensive default" 7
    (Univ.prj_default Univ.int ~default:7 junk);
  let vs = Univ.inj Codecs.vset (Value.Set.of_list [ "a"; "b" ]) in
  Alcotest.(check bool)
    "vset roundtrip" true
    (Value.Set.equal
       (Univ.prj_default Codecs.vset ~default:Value.Set.empty vs)
       (Value.Set.of_list [ "a"; "b" ]))

let test_univ_equal () =
  let a = Univ.inj Univ.int 1 and a' = Univ.inj Univ.int 1 in
  let b = Univ.inj Univ.int 2 in
  let s = Univ.inj Univ.string "1" in
  Alcotest.(check bool) "equal same" true (Univ.equal a a');
  Alcotest.(check bool) "not equal diff payload" false (Univ.equal a b);
  Alcotest.(check bool) "not equal diff key" false (Univ.equal a s)

let test_univ_distinct_keys () =
  (* two keys with the same name are still distinct *)
  let k1 = Univ.key ~name:"k" ~pp:Format.pp_print_int ~equal:Int.equal in
  let k2 = Univ.key ~name:"k" ~pp:Format.pp_print_int ~equal:Int.equal in
  let u = Univ.inj k1 5 in
  Alcotest.(check (option int)) "own key" (Some 5) (Univ.prj k1 u);
  Alcotest.(check (option int)) "other key" None (Univ.prj k2 u)

let test_rng_determinism () =
  let a = Rng.create 123 and b = Rng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Rng.int r 17 in
    Alcotest.(check bool) "in bounds" true (x >= 0 && x < 17)
  done

let test_rng_split_independent () =
  let r = Rng.create 5 in
  let a = Rng.split r and b = Rng.split r in
  let xs = List.init 20 (fun _ -> Rng.int a 1_000_000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1_000_000) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_rng_shuffle_permutation () =
  let r = Rng.create 11 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "multiset preserved"
    (Array.init 50 (fun i -> i))
    sorted

let test_value_set () =
  let s = Value.Set.of_list [ "b"; "a"; "a" ] in
  Alcotest.(check int) "dedup" 2 (Value.Set.cardinal s);
  Alcotest.(check bool) "mem" true (Value.Set.mem "a" s);
  Alcotest.(check bool)
    "opt equal" true
    (Value.equal_opt (Some "x") (Some "x"));
  Alcotest.(check bool) "opt not equal" false (Value.equal_opt (Some "x") None)

let tests =
  [
    Alcotest.test_case "univ roundtrip" `Quick test_univ_roundtrip;
    Alcotest.test_case "univ defensive default" `Quick test_univ_default;
    Alcotest.test_case "univ equality" `Quick test_univ_equal;
    Alcotest.test_case "univ distinct keys" `Quick test_univ_distinct_keys;
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng split" `Quick test_rng_split_independent;
    Alcotest.test_case "rng shuffle is a permutation" `Quick
      test_rng_shuffle_permutation;
    Alcotest.test_case "value sets" `Quick test_value_set;
  ]
