(* Unit tests for the Byzantine-linearizability checkers (Definition 7 via
   the free-interval completion of Definitions 73 / 140), on handcrafted
   histories of correct readers facing a faulty writer. *)

module History = Lnd_history.History
module Spec = Lnd_history.Spec
module Byzlin = Lnd_history.Byzlin
module V = Spec.Verifiable_spec
module S = Spec.Sticky_spec
module T = Spec.Testorset_spec

let ventry pid op inv ret rt : (V.op, V.res) History.entry =
  { History.pid; op; inv; ret = Some (ret, rt) }

let vh entries : (V.op, V.res) History.t = { History.entries }

let faulty_writer pid = pid <> 0
let all_correct _ = true

(* Faulty writer: readers read a value the writer never "wrote" in the
   correct-process history — justified by inserting writer ops. *)
let test_verifiable_faulty_reads () =
  let h =
    vh
      [
        ventry 1 V.Read 1 (V.Val "a") 2;
        ventry 2 V.Read 3 (V.Val "a") 4;
        ventry 3 V.Read 5 (V.Val "b") 6;
      ]
  in
  Alcotest.(check bool)
    "reads of faulty writer's values explainable" true
    (Byzlin.verifiable ~writer:0 ~correct:faulty_writer h)

(* Relay violation: VERIFY(v)=true strictly before VERIFY(v)=false cannot
   be explained by any insertion of writer operations. *)
let test_verifiable_relay_violation () =
  let h =
    vh
      [
        ventry 1 (V.Verify "x") 1 (V.Verified true) 2;
        ventry 2 (V.Verify "x") 3 (V.Verified false) 4;
      ]
  in
  Alcotest.(check bool)
    "true-then-false violates relay" false
    (Byzlin.verifiable ~writer:0 ~correct:faulty_writer h);
  (* the reverse order is fine: sign happens between them *)
  let h2 =
    vh
      [
        ventry 1 (V.Verify "x") 1 (V.Verified false) 2;
        ventry 2 (V.Verify "x") 3 (V.Verified true) 4;
      ]
  in
  Alcotest.(check bool)
    "false-then-true explainable" true
    (Byzlin.verifiable ~writer:0 ~correct:faulty_writer h2)

(* Concurrent verifies may disagree. *)
let test_verifiable_concurrent_disagreement () =
  let h =
    vh
      [
        ventry 1 (V.Verify "x") 1 (V.Verified true) 10;
        ventry 2 (V.Verify "x") 2 (V.Verified false) 9;
      ]
  in
  Alcotest.(check bool)
    "concurrent disagreement allowed" true
    (Byzlin.verifiable ~writer:0 ~correct:faulty_writer h)

(* With a CORRECT writer, no ops are inserted: a verify of a never-signed
   value returning true is a genuine violation. *)
let test_verifiable_correct_writer () =
  let h = vh [ ventry 1 (V.Verify "x") 1 (V.Verified true) 2 ] in
  Alcotest.(check bool)
    "unforgeable with correct writer" false
    (Byzlin.verifiable ~writer:0 ~correct:all_correct h);
  let h2 =
    vh
      [
        ventry 0 (V.Write "x") 1 V.Done 2;
        ventry 0 (V.Sign "x") 3 (V.Signed true) 4;
        ventry 1 (V.Verify "x") 5 (V.Verified true) 6;
      ]
  in
  Alcotest.(check bool)
    "signed value verifies" true
    (Byzlin.verifiable ~writer:0 ~correct:all_correct h2)

(* ---- sticky ---- *)

let sentry pid op inv ret rt : (S.op, S.res) History.entry =
  { History.pid; op; inv; ret = Some (ret, rt) }

let sh entries : (S.op, S.res) History.t = { History.entries }

let test_sticky_uniqueness_violation () =
  let h =
    sh
      [
        sentry 1 S.Read 1 (S.Val (Some "a")) 2;
        sentry 2 S.Read 3 (S.Val (Some "b")) 4;
      ]
  in
  Alcotest.(check bool)
    "two different non-bot reads rejected" false
    (Byzlin.sticky ~writer:0 ~correct:faulty_writer h)

let test_sticky_bot_after_value () =
  let h =
    sh
      [
        sentry 1 S.Read 1 (S.Val (Some "a")) 2;
        sentry 2 S.Read 3 (S.Val None) 4;
      ]
  in
  Alcotest.(check bool)
    "bot after value rejected" false
    (Byzlin.sticky ~writer:0 ~correct:faulty_writer h);
  let h2 =
    sh
      [
        sentry 1 S.Read 1 (S.Val None) 2;
        sentry 2 S.Read 3 (S.Val (Some "a")) 4;
      ]
  in
  Alcotest.(check bool)
    "value after bot explainable" true
    (Byzlin.sticky ~writer:0 ~correct:faulty_writer h2)

let test_sticky_concurrent_mixed () =
  (* concurrent reads: one sees bot, one sees the value — fine *)
  let h =
    sh
      [
        sentry 1 S.Read 1 (S.Val (Some "a")) 10;
        sentry 2 S.Read 2 (S.Val None) 9;
      ]
  in
  Alcotest.(check bool)
    "concurrent mixed reads fine" true
    (Byzlin.sticky ~writer:0 ~correct:faulty_writer h)

(* ---- test-or-set ---- *)

let tentry pid op inv ret rt : (T.op, T.res) History.entry =
  { History.pid; op; inv; ret = Some (ret, rt) }

let th entries : (T.op, T.res) History.t = { History.entries }

let test_testorset_relay () =
  let bad =
    th [ tentry 1 T.Test 1 (T.Bit 1) 2; tentry 2 T.Test 3 (T.Bit 0) 4 ]
  in
  Alcotest.(check bool)
    "1-then-0 rejected" false
    (Byzlin.testorset ~setter:0 ~correct:faulty_writer bad);
  let good =
    th [ tentry 1 T.Test 1 (T.Bit 0) 2; tentry 2 T.Test 3 (T.Bit 1) 4 ]
  in
  Alcotest.(check bool)
    "0-then-1 explainable" true
    (Byzlin.testorset ~setter:0 ~correct:faulty_writer good)

let test_testorset_correct_setter () =
  let h = th [ tentry 1 T.Test 1 (T.Bit 1) 2 ] in
  Alcotest.(check bool)
    "1 without set rejected when setter correct" false
    (Byzlin.testorset ~setter:0 ~correct:all_correct h)

let tests =
  [
    Alcotest.test_case "verifiable: faulty-writer reads" `Quick
      test_verifiable_faulty_reads;
    Alcotest.test_case "verifiable: relay violation" `Quick
      test_verifiable_relay_violation;
    Alcotest.test_case "verifiable: concurrent disagreement" `Quick
      test_verifiable_concurrent_disagreement;
    Alcotest.test_case "verifiable: correct writer" `Quick
      test_verifiable_correct_writer;
    Alcotest.test_case "sticky: uniqueness violation" `Quick
      test_sticky_uniqueness_violation;
    Alcotest.test_case "sticky: bot after value" `Quick
      test_sticky_bot_after_value;
    Alcotest.test_case "sticky: concurrent mixed" `Quick
      test_sticky_concurrent_mixed;
    Alcotest.test_case "test-or-set: relay" `Quick test_testorset_relay;
    Alcotest.test_case "test-or-set: correct setter" `Quick
      test_testorset_correct_setter;
  ]
