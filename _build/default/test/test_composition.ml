(* Composition: several register instances coexisting in one space, with
   different writers — a regression guard against hidden global state
   (Univ keys and register names are shared across instances). *)

open Lnd_shm
open Lnd_runtime
module Vr = Lnd_verifiable.Verifiable
module St = Lnd_sticky.Sticky

let run_ok ?(max_steps = 8_000_000) sched =
  match Sched.run ~max_steps sched with
  | Sched.Quiescent ->
      (match Sched.failures sched with
      | [] -> ()
      | ((f : Sched.fiber), e) :: _ ->
          Alcotest.failf "fiber %s failed: %s" f.Sched.fname
            (Printexc.to_string e))
  | Sched.Budget_exhausted -> Alcotest.fail "step budget exhausted"
  | Sched.Condition_met -> ()

(* Allocator that rotates ownership so that [writer] plays virtual p0. *)
let rotated space ~n ~writer : Cell.allocator =
  let to_real v = (v + writer) mod n in
  fun ~name ~owner ?single_reader ~init () ->
    Cell.shm_allocator space
      ~name:(Printf.sprintf "w%d.%s" writer name)
      ~owner:(to_real owner)
      ?single_reader:(Option.map to_real single_reader)
      ~init ()

(* Two verifiable registers with different writers in one space: values
   signed in one instance must not leak into the other. *)
let test_two_verifiable_instances () =
  let n = 4 and f = 1 in
  let space = Space.create ~n in
  let sched = Sched.create ~space ~choose:(Policy.random ~seed:31) in
  let mk writer = Vr.alloc_with (rotated space ~n ~writer) { Vr.n; f } in
  let ra = mk 0 and rb = mk 1 in
  (* helps for both instances; virtual pid = (real - writer) mod n *)
  List.iter
    (fun (regs, writer) ->
      for real = 0 to n - 1 do
        let vpid = ((real - writer) + n) mod n in
        ignore
          (Sched.spawn sched ~pid:real
             ~name:(Printf.sprintf "help-w%d-%d" writer real)
             ~daemon:true (fun () -> Vr.help regs ~pid:vpid))
      done)
    [ (ra, 0); (rb, 1) ];
  ignore
    (Sched.spawn sched ~pid:0 ~name:"writerA" (fun () ->
         let w = Vr.writer ra in
         Vr.write w "alpha";
         ignore (Vr.sign w "alpha")));
  ignore
    (Sched.spawn sched ~pid:1 ~name:"writerB" (fun () ->
         let w = Vr.writer rb in
         Vr.write w "beta";
         ignore (Vr.sign w "beta")));
  run_ok sched;
  (* p2: virtual pid 2 in instance A, virtual pid 1 in instance B *)
  let results = ref [] in
  ignore
    (Sched.spawn sched ~pid:2 ~name:"checker" (fun () ->
         let rda = Vr.reader ra ~pid:2 in
         let rdb = Vr.reader rb ~pid:1 in
         results :=
           [
             ("A signed alpha", Vr.verify rda "alpha");
             ("A did not sign beta", not (Vr.verify rda "beta"));
             ("B signed beta", Vr.verify rdb "beta");
             ("B did not sign alpha", not (Vr.verify rdb "alpha"));
           ]));
  run_ok sched;
  List.iter (fun (msg, ok) -> Alcotest.(check bool) msg true ok) !results

(* A verifiable and a sticky register sharing a space. *)
let test_mixed_instances () =
  let n = 4 and f = 1 in
  let space = Space.create ~n in
  let sched = Sched.create ~space ~choose:(Policy.random ~seed:32) in
  let vregs = Vr.alloc_with (rotated space ~n ~writer:0) { Vr.n; f } in
  let sregs = St.alloc_with (rotated space ~n ~writer:1) { St.n; f } in
  for real = 0 to n - 1 do
    ignore
      (Sched.spawn sched ~pid:real ~name:(Printf.sprintf "vhelp%d" real)
         ~daemon:true (fun () -> Vr.help vregs ~pid:real));
    let vpid = ((real - 1) + n) mod n in
    ignore
      (Sched.spawn sched ~pid:real ~name:(Printf.sprintf "shelp%d" real)
         ~daemon:true (fun () -> St.help sregs ~pid:vpid))
  done;
  ignore
    (Sched.spawn sched ~pid:0 ~name:"vwriter" (fun () ->
         let w = Vr.writer vregs in
         Vr.write w "v-value";
         ignore (Vr.sign w "v-value")));
  ignore
    (Sched.spawn sched ~pid:1 ~name:"swriter" (fun () ->
         St.write (St.writer sregs) "s-value"));
  run_ok sched;
  let verify_ok = ref false and read_ok = ref None in
  ignore
    (Sched.spawn sched ~pid:3 ~name:"checker" (fun () ->
         verify_ok := Vr.verify (Vr.reader vregs ~pid:3) "v-value";
         read_ok := St.read (St.reader sregs ~pid:2)));
  run_ok sched;
  Alcotest.(check bool) "verifiable instance works" true !verify_ok;
  Alcotest.(check (option string))
    "sticky instance works" (Some "s-value") !read_ok

let tests =
  [
    Alcotest.test_case "two verifiable instances" `Quick
      test_two_verifiable_instances;
    Alcotest.test_case "mixed verifiable + sticky" `Quick
      test_mixed_instances;
  ]
