(* Unit tests for the streaming property monitors on handcrafted
   histories: each monitor flags exactly the violations it should. *)

module History = Lnd_history.History
module Monitors = Lnd_history.Monitors
module V = Lnd_history.Spec.Verifiable_spec
module S = Lnd_history.Spec.Sticky_spec

let all_correct _ = true
let correct_except p pid = pid <> p

let ventry pid op inv ret rt : (V.op, V.res) History.entry =
  { History.pid; op; inv; ret = Some (ret, rt) }

let vh entries : (V.op, V.res) History.t = { History.entries }

let sentry pid op inv ret rt : (S.op, S.res) History.entry =
  { History.pid; op; inv; ret = Some (ret, rt) }

let sh entries : (S.op, S.res) History.t = { History.entries }

let test_relay_flags () =
  let h =
    vh
      [
        ventry 1 (V.Verify "x") 1 (V.Verified true) 2;
        ventry 2 (V.Verify "x") 3 (V.Verified false) 4;
      ]
  in
  Alcotest.(check int) "one violation" 1
    (List.length (Monitors.relay ~correct:all_correct h))

let test_relay_ok_on_concurrent () =
  let h =
    vh
      [
        ventry 1 (V.Verify "x") 1 (V.Verified true) 10;
        ventry 2 (V.Verify "x") 2 (V.Verified false) 9;
      ]
  in
  Alcotest.(check int) "no violation for concurrent ops" 0
    (List.length (Monitors.relay ~correct:all_correct h))

let test_relay_distinct_values () =
  let h =
    vh
      [
        ventry 1 (V.Verify "x") 1 (V.Verified true) 2;
        ventry 2 (V.Verify "y") 3 (V.Verified false) 4;
      ]
  in
  Alcotest.(check int) "different values don't interact" 0
    (List.length (Monitors.relay ~correct:all_correct h))

let test_relay_ignores_byz () =
  let h =
    vh
      [
        ventry 3 (V.Verify "x") 1 (V.Verified true) 2;
        ventry 2 (V.Verify "x") 3 (V.Verified false) 4;
      ]
  in
  Alcotest.(check int) "byzantine reader excluded" 0
    (List.length (Monitors.relay ~correct:(correct_except 3) h))

let test_validity_flags () =
  let h =
    vh
      [
        ventry 0 (V.Sign "x") 1 (V.Signed true) 2;
        ventry 1 (V.Verify "x") 3 (V.Verified false) 4;
      ]
  in
  Alcotest.(check int) "validity violation flagged" 1
    (List.length (Monitors.validity ~correct:all_correct h))

let test_unforgeability_flags () =
  let h = vh [ ventry 1 (V.Verify "x") 1 (V.Verified true) 2 ] in
  Alcotest.(check int) "unforgeability violation flagged" 1
    (List.length (Monitors.unforgeability ~correct:all_correct ~writer:0 h));
  (* with a faulty writer the monitor does not apply *)
  Alcotest.(check int) "skipped for faulty writer" 0
    (List.length
       (Monitors.unforgeability ~correct:(correct_except 0) ~writer:0 h))

let test_unforgeability_concurrent_sign_ok () =
  let h =
    vh
      [
        ventry 0 (V.Sign "x") 1 (V.Signed true) 10;
        ventry 1 (V.Verify "x") 2 (V.Verified true) 9;
      ]
  in
  Alcotest.(check int) "concurrent sign justifies verify" 0
    (List.length (Monitors.unforgeability ~correct:all_correct ~writer:0 h))

let test_uniqueness_flags_disagreement () =
  let h =
    sh
      [
        sentry 1 S.Read 1 (S.Val (Some "a")) 2;
        sentry 2 S.Read 3 (S.Val (Some "b")) 4;
      ]
  in
  Alcotest.(check bool) "disagreement flagged" true
    (List.length (Monitors.uniqueness ~correct:all_correct h) >= 1)

let test_uniqueness_flags_bot_after_value () =
  let h =
    sh
      [
        sentry 1 S.Read 1 (S.Val (Some "a")) 2;
        sentry 2 S.Read 3 (S.Val None) 4;
      ]
  in
  Alcotest.(check bool) "⊥-after-value flagged" true
    (List.length (Monitors.uniqueness ~correct:all_correct h) >= 1)

let test_uniqueness_ok () =
  let h =
    sh
      [
        sentry 1 S.Read 1 (S.Val None) 2;
        sentry 2 S.Read 3 (S.Val (Some "a")) 4;
        sentry 3 S.Read 5 (S.Val (Some "a")) 6;
      ]
  in
  Alcotest.(check int) "clean history passes" 0
    (List.length (Monitors.uniqueness ~correct:all_correct h))

let test_sticky_validity_flags () =
  let h =
    sh
      [
        sentry 0 (S.Write "v") 1 S.Done 2;
        sentry 1 S.Read 3 (S.Val None) 4;
      ]
  in
  Alcotest.(check int) "validity violation flagged" 1
    (List.length (Monitors.sticky_validity ~correct:all_correct ~writer:0 h));
  (* a read concurrent with the write is fine *)
  let h2 =
    sh
      [
        sentry 0 (S.Write "v") 1 S.Done 10;
        sentry 1 S.Read 3 (S.Val None) 4;
      ]
  in
  Alcotest.(check int) "concurrent read fine" 0
    (List.length (Monitors.sticky_validity ~correct:all_correct ~writer:0 h2))

let tests =
  [
    Alcotest.test_case "relay: flags true-then-false" `Quick test_relay_flags;
    Alcotest.test_case "relay: concurrent ok" `Quick
      test_relay_ok_on_concurrent;
    Alcotest.test_case "relay: distinct values ok" `Quick
      test_relay_distinct_values;
    Alcotest.test_case "relay: byzantine excluded" `Quick
      test_relay_ignores_byz;
    Alcotest.test_case "validity: flags false-after-sign" `Quick
      test_validity_flags;
    Alcotest.test_case "unforgeability: flags and scopes" `Quick
      test_unforgeability_flags;
    Alcotest.test_case "unforgeability: concurrent sign ok" `Quick
      test_unforgeability_concurrent_sign_ok;
    Alcotest.test_case "uniqueness: flags disagreement" `Quick
      test_uniqueness_flags_disagreement;
    Alcotest.test_case "uniqueness: flags bot-after-value" `Quick
      test_uniqueness_flags_bot_after_value;
    Alcotest.test_case "uniqueness: clean history" `Quick test_uniqueness_ok;
    Alcotest.test_case "sticky validity: flags and concurrency" `Quick
      test_sticky_validity_flags;
  ]
