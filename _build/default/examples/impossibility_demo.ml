(* Theorem 23, live (Figures 1-3): why n > 3f is necessary.

   We build the simple test-or-set object from the paper's verifiable
   register (Observation 25), but instantiate the register implementation
   at n = 3f — one process short of Algorithm 1's requirement. Then we run
   the history of the impossibility proof:

     H1:  the (for now, well-behaved) setter s performs SET;
          tester p_a performs TEST and gets 1.
     H2:  s and its coalition Q1 turn Byzantine: they RESET every register
          they own back to its initial value — "denying" that the set ever
          happened — and answer "no" to every inquiry from now on.
          The sleeping tester p_b (with Q3) wakes up and performs TEST'.

   At n = 3f, TEST' returns 0: the relay property (Observation 21(3) /
   Lemma 22(3)) is violated — 'you can deny' after all. With one more
   process (n = 3f + 1), the identical adversary is powerless.

   Run with: dune exec examples/impossibility_demo.exe *)

open Lnd

let run ?(impl = Impossibility.Via_verifiable) ~n ~f () =
  let o = Impossibility.run_attack ~seed:7 ~impl ~n ~f () in
  Printf.printf "  %s\n"
    (Format.asprintf "%a" Impossibility.pp_outcome o);
  o

let () =
  Printf.printf
    "== Executable impossibility (Theorem 23, Figures 1-3) ==\n\n\
     Scenario: SET by s; TEST by p_a -> 1; then {s} ∪ Q1 reset their\n\
     registers ('deny') and answer no; p_b wakes and runs TEST'.\n\n";
  Printf.printf "At the impossibility bound (n = 3f):\n";
  List.iter
    (fun fv -> ignore (run ~n:(3 * fv) ~f:fv ()))
    [ 1; 2; 3 ];
  Printf.printf "\nOne process above the bound (n = 3f + 1):\n";
  List.iter
    (fun fv -> ignore (run ~n:((3 * fv) + 1) ~f:fv ()))
    [ 1; 2; 3 ];
  Printf.printf
    "\nThe impossibility is implementation-independent — the same adversary\n\
     against the STICKY-register-based test-or-set:\n";
  List.iter
    (fun fv -> ignore (run ~impl:Impossibility.Via_sticky ~n:(3 * fv) ~f:fv ()))
    [ 1; 2 ];
  List.iter
    (fun fv ->
      ignore (run ~impl:Impossibility.Via_sticky ~n:((3 * fv) + 1) ~f:fv ()))
    [ 1; 2 ];
  Printf.printf
    "\nReading the result: at n = 3f the Byzantine coalition makes a later\n\
     correct tester contradict an earlier one (TEST=1 then TEST'=0), which\n\
     no linearization with a correct setter can explain — exactly the\n\
     contradiction in the proof of Theorem 23. At n = 3f+1 the f+1 correct\n\
     witnesses formed during TEST are enough to carry the value through\n\
     the denial, so the attack fails (Theorem 14's regime).\n"
