(* Non-equivocating broadcast (Section 1.2): a Byzantine broadcaster tries
   to send different proposals to different processes — the classic way to
   foil consensus. With sticky registers it cannot: once one correct
   process delivers a value, everyone delivers the same value.

   Run with: dune exec examples/non_equivocation.exe *)

open Lnd

let () =
  let n = 4 and f = 1 in
  Printf.printf
    "== non-equivocation: Byzantine p0 proposes 'attack' to some and \
     'retreat' to others ==\n";
  let space = Space.create ~n in
  let sched = Sched.create ~space ~choose:(Policy.random ~seed:3) in
  let bc =
    Broadcast.Neq.create space sched ~n ~f ~slots:1 ~byzantine:[ 0 ] ()
  in

  (* Byzantine broadcaster: attacks its own sticky register with the
     equivocation strategy (writes 'attack', then overwrites its echo
     register with 'retreat' and answers different readers differently). *)
  ignore
    (Byz_sticky.spawn_equivocating_writer sched
       bc.Broadcast.Neq.instances.(0).(0).Broadcast.Neq.regs ~va:"attack"
       ~vb:"retreat" ~flip_after:2 ());

  let delivered = Array.make n None in
  for pid = 1 to n - 1 do
    ignore
      (Sched.spawn sched ~pid ~name:(Printf.sprintf "general%d" pid)
         (fun () ->
           delivered.(pid) <-
             Broadcast.Neq.deliver bc ~reader:pid ~sender:0 ~slot:0;
           Printf.printf "p%d delivers: %s\n" pid
             (match delivered.(pid) with
             | Some m -> Printf.sprintf "%S" m
             | None -> "(nothing)")))
  done;

  (match Sched.run ~max_steps:6_000_000 sched with
  | Sched.Quiescent -> ()
  | _ -> failwith "simulation did not quiesce");

  let values =
    Array.to_list delivered |> List.filter_map (fun x -> x)
    |> List.sort_uniq compare
  in
  Printf.printf "\ndistinct values delivered by correct processes: %d\n"
    (List.length values);
  (match values with
  | [] -> Printf.printf "nobody delivered — also consistent (no quorum formed)\n"
  | [ v ] ->
      Printf.printf
        "UNIQUENESS holds: every correct process that delivered got %S\n" v
  | _ -> failwith "BUG: correct processes delivered different values!");
  Printf.printf
    "\n(Contrast: Srikanth-Toueg authenticated broadcast over message \
     passing\n\
     accepts BOTH equivocating messages — see test 'ST: no uniqueness' in\n\
     the test suite. Sticky registers close exactly this gap.)\n"
