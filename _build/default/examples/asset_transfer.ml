(* A miniature asset-transfer ledger (the motivating application of
   Cohen-Keidar [4], reconstructed signature-free on this paper's
   registers).

   Each account owner broadcasts its transfers through sticky registers —
   one sticky register per (owner, sequence number). A transfer is valid
   only if the owner's balance, replaying its outgoing transfers in
   sequence order plus incoming ones, never goes negative. Because each
   slot is sticky, a Byzantine owner cannot double-spend by showing
   different transfer #k to different validators: everyone who reads slot
   k sees the same transfer.

   Run with: dune exec examples/asset_transfer.exe *)

open Lnd

let n = 4
let f = 1
let slots = 2 (* transfers per account in this demo *)
let initial_balance = 100

(* transfer encoding: "dst:amount" *)
let encode ~dst ~amount = Printf.sprintf "%d:%d" dst amount

let decode (s : string) : (int * int) option =
  match String.split_on_char ':' s with
  | [ d; a ] -> (
      match (int_of_string_opt d, int_of_string_opt a) with
      | Some d, Some a -> Some (d, a)
      | _ -> None)
  | _ -> None

(* Replay the ledger from every account's delivered transfer slots, in
   (owner, slot) order. Invalid (overdraft / garbled) transfers are
   skipped deterministically. *)
let replay (transfers : (int * int * string) list) : int array =
  let balance = Array.make n initial_balance in
  List.iter
    (fun (owner, _slot, t) ->
      match decode t with
      | Some (dst, amount)
        when dst >= 0 && dst < n && amount > 0 && balance.(owner) >= amount ->
          balance.(owner) <- balance.(owner) - amount;
          balance.(dst) <- balance.(dst) + amount
      | _ -> () (* rejected *))
    (List.sort compare transfers);
  balance

let () =
  Printf.printf
    "== asset transfer on sticky registers: %d accounts, %d Byzantine ==\n" n
    f;
  let space = Space.create ~n in
  let sched = Sched.create ~space ~choose:(Policy.random ~seed:5) in
  let bc = Broadcast.Neq.create space sched ~n ~f ~slots ~byzantine:[] () in

  (* Account owners issue transfers; each remembers its own issues
     (local knowledge, used when it later validates). *)
  let own_issues = Array.make n [] in
  let issue ~owner ~slot t =
    own_issues.(owner) <- (owner, slot, t) :: own_issues.(owner);
    Broadcast.Neq.bcast bc ~sender:owner ~slot t
  in
  ignore
    (Sched.spawn sched ~pid:0 ~name:"acct0" (fun () ->
         issue ~owner:0 ~slot:0 (encode ~dst:1 ~amount:30);
         issue ~owner:0 ~slot:1 (encode ~dst:2 ~amount:20)));
  ignore
    (Sched.spawn sched ~pid:1 ~name:"acct1" (fun () ->
         issue ~owner:1 ~slot:0 (encode ~dst:3 ~amount:50)));
  ignore
    (Sched.spawn sched ~pid:2 ~name:"acct2" (fun () ->
         (* an overdraft attempt: 200 > 100+20; validators reject it *)
         issue ~owner:2 ~slot:0 (encode ~dst:0 ~amount:200)));
  (match Sched.run ~max_steps:20_000_000 sched with
  | Sched.Quiescent -> ()
  | _ -> failwith "issuing transfers did not quiesce");

  (* Every validator independently collects all slots and replays. *)
  let ledgers = Array.make n [||] in
  for pid = 1 to n - 1 do
    ignore
      (Sched.spawn sched ~pid ~name:(Printf.sprintf "validator%d" pid)
         (fun () ->
           let transfers = ref own_issues.(pid) in
           for owner = 0 to n - 1 do
             if owner <> pid then
               for slot = 0 to slots - 1 do
                 match
                   Broadcast.Neq.deliver bc ~reader:pid ~sender:owner ~slot
                 with
                 | Some t -> transfers := (owner, slot, t) :: !transfers
                 | None -> ()
               done
           done;
           ledgers.(pid) <- replay !transfers))
  done;
  (match Sched.run ~max_steps:20_000_000 sched with
  | Sched.Quiescent -> ()
  | _ -> failwith "validation did not quiesce");

  for pid = 1 to n - 1 do
    Printf.printf "validator p%d ledger: [%s]\n" pid
      (String.concat "; "
         (Array.to_list (Array.map string_of_int ledgers.(pid))))
  done;
  (* Validators may have validated at different times, but any transfer a
     validator saw is sticky: re-validation can only add transfers, never
     change or remove them. With all transfers settled, ledgers agree. *)
  let reference = ledgers.(1) in
  for pid = 2 to n - 1 do
    if ledgers.(pid) <> reference then
      failwith "BUG: validators disagree on settled ledger"
  done;
  Printf.printf "all validators agree; overdraft was rejected everywhere.\n"
