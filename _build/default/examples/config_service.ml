(* A certified configuration service — the multivalued face of the
   verifiable register.

   Section 4 of the paper stresses that the writer may sign only a subset
   of the values it writes, and may sign older values. This demo uses
   that: a publisher writes a stream of configuration revisions into one
   verifiable register but only SIGNs the revisions that passed review.
   Subscribers accept a revision only if VERIFY says the publisher signed
   it — so a compromised (Byzantine) publisher can still publish garbage,
   but it cannot forge a certified revision, and once any subscriber has
   accepted a revision, the publisher cannot "unrelease" it (relay).

   Run with: dune exec examples/config_service.exe *)

open Lnd

let () =
  let n = 4 and f = 1 in
  Printf.printf "== certified config service: n=%d, f=%d ==\n" n f;
  let sys = Verifiable_system.make ~policy:(Policy.random ~seed:21) ~n ~f () in

  (* The publisher writes three revisions and certifies only two. *)
  ignore
    (Verifiable_system.client sys ~pid:0 ~name:"publisher" (fun () ->
         Verifiable_system.op_write sys "rev1:timeout=30";
         let ok = Verifiable_system.op_sign sys "rev1:timeout=30" in
         Printf.printf "publisher: release rev1 (certified=%b)\n" ok;
         Verifiable_system.op_write sys "rev2:timeout=5";
         Printf.printf "publisher: draft rev2 (NOT certified)\n";
         Verifiable_system.op_write sys "rev3:timeout=60";
         let ok = Verifiable_system.op_sign sys "rev3:timeout=60" in
         Printf.printf "publisher: release rev3 (certified=%b)\n" ok;
         (* ...and it may certify an older revision later (Section 4) *)
         let ok = Verifiable_system.op_sign sys "rev2:timeout=5" in
         Printf.printf "publisher: belatedly certify rev2 (certified=%b)\n" ok));
  (match Verifiable_system.run ~max_steps:4_000_000 sys with
  | Sched.Quiescent -> ()
  | _ -> failwith "publishing did not quiesce");

  (* Subscribers: read the current revision and fall back through the
     revision list until they find a certified one. *)
  let candidates = [ "rev3:timeout=60"; "rev2:timeout=5"; "rev1:timeout=30" ] in
  for pid = 1 to n - 1 do
    ignore
      (Verifiable_system.client sys ~pid
         ~name:(Printf.sprintf "subscriber%d" pid)
         (fun () ->
           let current = Verifiable_system.op_read sys ~pid in
           let accepted =
             List.find_opt
               (fun rev -> Verifiable_system.op_verify sys ~pid rev)
               candidates
           in
           Printf.printf "p%d: current=%S, accepts %s\n" pid current
             (match accepted with
             | Some r -> Printf.sprintf "%S" r
             | None -> "(nothing certified)");
           (* a revision nobody certified never verifies *)
           assert (not (Verifiable_system.op_verify sys ~pid "rev9:evil"))))
  done;
  (match Verifiable_system.run ~max_steps:4_000_000 sys with
  | Sched.Quiescent -> ()
  | _ -> failwith "subscribing did not quiesce");

  Printf.printf "\nhistory Byzantine-linearizable: %b\n"
    (Verifiable_system.byz_linearizable sys);
  Printf.printf
    "All subscribers accepted a certified revision; the uncertified draft\n\
     and the forged revision were rejected everywhere.\n"
