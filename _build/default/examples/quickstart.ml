(* Quickstart: a 4-process system (1 writer, 3 readers, tolerating f = 1
   Byzantine process) around one SWMR verifiable register.

   The writer writes and "signs" a value without any cryptography
   (Algorithm 1); readers verify it, and verification is relayable: once
   any reader verified the value, every reader will.

   Run with: dune exec examples/quickstart.exe *)

open Lnd

let () =
  let n = 4 and f = 1 in
  Printf.printf "== lie_not_deny quickstart: n=%d processes, f=%d Byzantine ==\n"
    n f;

  (* Build a simulated system: register space, fair seeded scheduler, and
     the background Help() fiber of every process (required by Alg. 1). *)
  let sys = Verifiable_system.make ~policy:(Policy.random ~seed:1) ~n ~f () in

  (* The writer (process 0) writes two values and signs one of them. *)
  ignore
    (Verifiable_system.client sys ~pid:0 ~name:"writer" (fun () ->
         Verifiable_system.op_write sys "launch-codes:4242";
         let ok = Verifiable_system.op_sign sys "launch-codes:4242" in
         Printf.printf "p0: WRITE + SIGN %S -> %s\n" "launch-codes:4242"
           (if ok then "SUCCESS" else "FAIL");
         Verifiable_system.op_write sys "unsigned-draft";
         Printf.printf "p0: WRITE %S (never signed)\n" "unsigned-draft"));
  (match Verifiable_system.run ~max_steps:2_000_000 sys with
  | Sched.Quiescent -> ()
  | _ -> failwith "simulation did not quiesce");

  (* Readers read the register and verify both values. *)
  for pid = 1 to n - 1 do
    ignore
      (Verifiable_system.client sys ~pid
         ~name:(Printf.sprintf "reader%d" pid)
         (fun () ->
           let v = Verifiable_system.op_read sys ~pid in
           let signed = Verifiable_system.op_verify sys ~pid "launch-codes:4242" in
           let draft = Verifiable_system.op_verify sys ~pid "unsigned-draft" in
           Printf.printf
             "p%d: READ -> %S; VERIFY(launch-codes) -> %b; \
              VERIFY(unsigned-draft) -> %b\n"
             pid v signed draft))
  done;

  (* Run the simulation to quiescence. *)
  (match Verifiable_system.run ~max_steps:2_000_000 sys with
  | Sched.Quiescent -> ()
  | _ -> failwith "simulation did not quiesce");

  (* The recorded history is Byzantine linearizable (Theorem 14). *)
  Printf.printf "\nhistory Byzantine-linearizable: %b\n"
    (Verifiable_system.byz_linearizable sys);
  Printf.printf "total register accesses: %s\n"
    (Format.asprintf "%a" Space.pp_stats (Space.stats sys.space))
