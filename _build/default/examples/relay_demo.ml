(* "You can lie but not deny" — the title scenario, end to end.

   A Byzantine writer writes and signs a value ("lies"), lets one reader
   verify it, then erases every register it owns and answers "no" to all
   further inquiries ("denies"). Algorithm 1 guarantees the denial fails:
   once any correct reader verified the value, every later VERIFY by any
   correct reader still returns true — without any cryptography.

   Run with: dune exec examples/relay_demo.exe *)

open Lnd

let () =
  let n = 4 and f = 1 in
  Printf.printf "== relay demo: Byzantine writer lies, then tries to deny ==\n";
  let sys =
    Verifiable_system.make ~policy:(Policy.random ~seed:11) ~n ~f
      ~byzantine:[ 0 ] ()
  in
  (* The adversary: writes + "signs" v, answers two inquiries, then resets
     R*, its witness register and all its mailboxes, and denies. *)
  ignore
    (Byz_verifiable.spawn_denying_writer sys.sched sys.regs ~v:"the-lie"
       ~deny_after:2 ());

  (* Reader p1 verifies first. *)
  let first = ref false in
  ignore
    (Verifiable_system.client sys ~pid:1 ~name:"early-verifier" (fun () ->
         first := Verifiable_system.op_verify sys ~pid:1 "the-lie";
         Printf.printf "p1 (early): VERIFY(the-lie) -> %b\n" !first));
  (match Verifiable_system.run ~max_steps:4_000_000 sys with
  | Sched.Quiescent -> ()
  | _ -> failwith "phase 1 did not quiesce");

  (* By now the writer has denied. Later readers must still verify true if
     p1 did (the relay property, Observation 13). *)
  Printf.printf "-- writer has now erased its registers and denies --\n";
  for pid = 2 to n - 1 do
    let later = ref false in
    ignore
      (Verifiable_system.client sys ~pid
         ~name:(Printf.sprintf "late-verifier%d" pid)
         (fun () ->
           later := Verifiable_system.op_verify sys ~pid "the-lie";
           Printf.printf "p%d (late):  VERIFY(the-lie) -> %b\n" pid !later));
    (match Verifiable_system.run ~max_steps:4_000_000 sys with
    | Sched.Quiescent -> ()
    | _ -> failwith "phase 2 did not quiesce");
    if !first && not !later then
      failwith "BUG: relay violated — the denial succeeded!"
  done;

  Printf.printf "\nhistory Byzantine-linearizable: %b\n"
    (Verifiable_system.byz_linearizable sys);
  if !first then
    Printf.printf
      "The writer lied — but could not deny: %d witnesses keep the \
       signature alive.\n"
      (n - f)
  else
    Printf.printf
      "(In this schedule no reader verified before the denial; rerun with \
       another seed.)\n"
