(* Two-party contract signing, with no cryptography.

   Alice and Bob each own a verifiable register. To countersign a
   contract, each writes the contract text into its own register and
   SIGNs it there. Any arbiter can then check both signatures with
   VERIFY — and because verified values are relayable (Observation 13),
   once one arbiter has seen both signatures, NO later arbiter can be
   convinced otherwise: neither party can repudiate.

   Bob is Byzantine here: he signs, waits until an arbiter confirmed the
   contract, then erases his registers and denies. The relay property
   defeats the repudiation.

   Run with: dune exec examples/contract_signing.exe *)

open Lnd

let contract = "alice-sells-bob-one-goat-for-40"

let () =
  let n = 4 and f = 1 in
  Printf.printf "== contract signing without signatures: n=%d, f=%d ==\n" n f;
  let space = Space.create ~n in
  let sched = Sched.create ~space ~choose:(Policy.random ~seed:77) in

  (* Two verifiable-register instances in one space: Alice (p0) writes
     hers; Bob (p1) writes his (ownership rotated per instance). *)
  let rotated ~writer : Cell.allocator =
    let to_real v = (v + writer) mod n in
    fun ~name ~owner ?single_reader ~init () ->
      Cell.shm_allocator space
        ~name:(Printf.sprintf "%s.%s" (if writer = 0 then "alice" else "bob") name)
        ~owner:(to_real owner)
        ?single_reader:(Option.map to_real single_reader)
        ~init ()
  in
  let alice_regs = Verifiable.alloc_with (rotated ~writer:0) { Verifiable.n; f } in
  let bob_regs = Verifiable.alloc_with (rotated ~writer:1) { Verifiable.n; f } in
  (* helpers for both instances (Bob, being Byzantine, helps only until
     he turns coat — modelled by just running his helpers; his denial is
     an extra fiber) *)
  List.iter
    (fun (regs, writer) ->
      for real = 0 to n - 1 do
        let vpid = ((real - writer) + n) mod n in
        ignore
          (Sched.spawn sched ~pid:real
             ~name:(Printf.sprintf "help%d.%d" writer real)
             ~daemon:true (fun () -> Verifiable.help regs ~pid:vpid))
      done)
    [ (alice_regs, 0); (bob_regs, 1) ];

  (* Both parties countersign. *)
  ignore
    (Sched.spawn sched ~pid:0 ~name:"alice" (fun () ->
         let w = Verifiable.writer alice_regs in
         Verifiable.write w contract;
         ignore (Verifiable.sign w contract);
         Printf.printf "alice: signed %S\n" contract));
  ignore
    (Sched.spawn sched ~pid:1 ~name:"bob" (fun () ->
         let w = Verifiable.writer bob_regs in
         Verifiable.write w contract;
         ignore (Verifiable.sign w contract);
         Printf.printf "bob:   signed %S (but he is plotting)\n" contract));
  (match Sched.run ~max_steps:8_000_000 sched with
  | Sched.Quiescent -> ()
  | _ -> failwith "signing did not quiesce");

  (* Arbiter 1 (p2) confirms both signatures. *)
  let confirmed = ref false in
  ignore
    (Sched.spawn sched ~pid:2 ~name:"arbiter1" (fun () ->
         let a = Verifiable.verify (Verifiable.reader alice_regs ~pid:2) contract in
         (* p2 is virtual pid ((2-1)+n) mod n = 1 in Bob's instance *)
         let b = Verifiable.verify (Verifiable.reader bob_regs ~pid:1) contract in
         confirmed := a && b;
         Printf.printf "arbiter1: alice-signed=%b bob-signed=%b -> contract %s\n"
           a b (if !confirmed then "BINDING" else "not binding")));
  (match Sched.run ~max_steps:8_000_000 sched with
  | Sched.Quiescent -> ()
  | _ -> failwith "arbitration did not quiesce");

  (* Bob repudiates: erases every register he owns in his instance. *)
  ignore
    (Sched.spawn sched ~pid:1 ~name:"bob-repudiates" (fun () ->
         List.iter
           (fun (r : Register.t) ->
             if String.length r.Register.name >= 3
                && String.sub r.Register.name 0 3 = "bob"
             then Sched.write r r.Register.init)
           (Space.owned space ~pid:1);
         Printf.printf "bob:   erased his registers — 'I never signed that!'\n"));
  (match Sched.run ~max_steps:8_000_000 sched with
  | Sched.Quiescent -> ()
  | _ -> failwith "repudiation did not quiesce");

  (* Arbiter 2 (p3) re-checks after the repudiation. *)
  ignore
    (Sched.spawn sched ~pid:3 ~name:"arbiter2" (fun () ->
         let a = Verifiable.verify (Verifiable.reader alice_regs ~pid:3) contract in
         let b = Verifiable.verify (Verifiable.reader bob_regs ~pid:2) contract in
         Printf.printf "arbiter2 (after repudiation): alice=%b bob=%b\n" a b;
         if !confirmed && not (a && b) then
           failwith "BUG: repudiation succeeded — relay violated!"));
  (match Sched.run ~max_steps:8_000_000 sched with
  | Sched.Quiescent -> ()
  | _ -> failwith "re-arbitration did not quiesce");
  Printf.printf
    "\nBob lied — and still could not deny: the witnesses formed during\n\
     arbiter1's check keep his signature verifiable forever.\n"
