(* The consensus-proposal motivation from the paper's introduction
   (Section 1.2): "a Byzantine process can easily violate this
   'uniqueness' requirement by successively writing several properly
   signed values into this register (e.g., it could successively propose
   several values to try to foil consensus). To prevent this malicious
   behaviour, processes could be required to use SWMR sticky registers
   for storing values that should be unique."

   This demo builds exactly that: a proposal board where each process's
   proposal lives in its own sticky register. The Byzantine process tries
   to shop different proposals to different observers; stickiness pins it
   to one. Every correct process then applies the same deterministic
   choice rule to the settled board and picks the same winner — the
   uniqueness that signatures alone cannot provide.

   Run with: dune exec examples/proposal_board.exe *)

open Lnd

let n = 4
let f = 1

let () =
  Printf.printf
    "== proposal board: %d processes propose; p3 is Byzantine and tries \
     to shop two proposals ==\n"
    n;
  let space = Space.create ~n in
  let sched = Sched.create ~space ~choose:(Policy.random ~seed:9) in
  (* one sticky slot per proposer *)
  let board =
    Broadcast.Neq.create space sched ~n ~f ~slots:1 ~byzantine:[ 3 ] ()
  in

  (* Correct proposers post their proposals. *)
  List.iter
    (fun (pid, proposal) ->
      ignore
        (Sched.spawn sched ~pid ~name:(Printf.sprintf "propose%d" pid)
           (fun () ->
             Broadcast.Neq.bcast board ~sender:pid ~slot:0 proposal;
             Printf.printf "p%d proposes %S\n" pid proposal)))
    [ (0, "commit-tx-42"); (1, "abort"); (2, "commit-tx-42") ];

  (* The Byzantine proposer equivocates between two proposals. *)
  ignore
    (Byz_sticky.spawn_equivocating_writer sched
       board.Broadcast.Neq.instances.(3).(0).Broadcast.Neq.regs
       ~va:"evil-plan-A" ~vb:"evil-plan-B" ~flip_after:2 ());
  Printf.printf "p3 (Byzantine) shops both %S and %S\n" "evil-plan-A"
    "evil-plan-B";

  (match Sched.run ~max_steps:20_000_000 sched with
  | Sched.Quiescent -> ()
  | _ -> failwith "posting proposals did not quiesce");

  (* Every correct process reads the whole board and applies the same
     deterministic rule: majority proposal, ties broken by value. *)
  let decisions = Array.make n None in
  for pid = 0 to n - 1 do
    if pid <> 3 then
      ignore
        (Sched.spawn sched ~pid ~name:(Printf.sprintf "decide%d" pid)
           (fun () ->
             let proposals =
               List.filter_map
                 (fun proposer ->
                   if proposer = pid then None
                   else
                     Broadcast.Neq.deliver board ~reader:pid ~sender:proposer
                       ~slot:0)
                 [ 0; 1; 2; 3 ]
             in
             (* plus this process's own proposal, if it made one *)
             let proposals =
               match pid with
               | 0 | 2 -> "commit-tx-42" :: proposals
               | 1 -> "abort" :: proposals
               | _ -> proposals
             in
             let counted =
               List.sort_uniq compare proposals
               |> List.map (fun p ->
                      ( List.length (List.filter (String.equal p) proposals),
                        p ))
               |> List.sort (fun a b -> compare b a)
             in
             match counted with
             | (votes, winner) :: _ ->
                 decisions.(pid) <- Some winner;
                 Printf.printf "p%d sees board %s -> decides %S (%d votes)\n"
                   pid
                   (String.concat "," (List.map (Printf.sprintf "%S") proposals))
                   winner votes
             | [] -> Printf.printf "p%d sees an empty board\n" pid))
  done;
  (match Sched.run ~max_steps:20_000_000 sched with
  | Sched.Quiescent -> ()
  | _ -> failwith "deciding did not quiesce");

  let decided =
    Array.to_list decisions |> List.filter_map (fun x -> x)
    |> List.sort_uniq compare
  in
  match decided with
  | [ winner ] ->
      Printf.printf
        "\nall correct processes decided %S — the Byzantine proposer was \
         pinned to a single proposal by the sticky register.\n"
        winner
  | [] -> Printf.printf "\nnobody decided (no quorum formed)\n"
  | ws ->
      failwith
        (Printf.sprintf "BUG: decisions diverged: %s" (String.concat "," ws))
