examples/config_service.ml: List Lnd Policy Printf Sched Verifiable_system
