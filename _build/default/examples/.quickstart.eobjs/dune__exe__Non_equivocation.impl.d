examples/non_equivocation.ml: Array Broadcast Byz_sticky List Lnd Policy Printf Sched Space
