examples/proposal_board.ml: Array Broadcast Byz_sticky List Lnd Policy Printf Sched Space String
