examples/quickstart.mli:
