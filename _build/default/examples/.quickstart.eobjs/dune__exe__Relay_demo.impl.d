examples/relay_demo.ml: Byz_verifiable Lnd Policy Printf Sched Verifiable_system
