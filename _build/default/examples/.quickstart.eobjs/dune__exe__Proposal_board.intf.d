examples/proposal_board.mli:
