examples/asset_transfer.mli:
