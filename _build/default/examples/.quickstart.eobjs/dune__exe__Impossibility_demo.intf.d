examples/impossibility_demo.mli:
