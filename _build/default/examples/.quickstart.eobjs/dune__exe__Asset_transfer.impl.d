examples/asset_transfer.ml: Array Broadcast List Lnd Policy Printf Sched Space String
