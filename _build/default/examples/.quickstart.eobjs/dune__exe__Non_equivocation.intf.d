examples/non_equivocation.mli:
