examples/quickstart.ml: Format Lnd Policy Printf Sched Space Verifiable_system
