examples/impossibility_demo.ml: Format Impossibility List Lnd Printf
