examples/relay_demo.mli:
