examples/contract_signing.ml: Cell List Lnd Option Policy Printf Register Sched Space String Verifiable
