(* Benchmark harness — regenerates every experiment table of
   EXPERIMENTS.md (the paper is theory-only; DESIGN.md §3 defines the
   experiment suite: cost tables T1-T7 plus wall-clock micro-benchmarks).

   Everything deterministic is measured in *shared-register accesses* and
   *scheduler steps* (the natural cost model of the paper); wall-clock
   numbers come from bechamel at the end.

   Run with: dune exec bench/main.exe *)

open Lnd_support
open Lnd_shm
open Lnd_runtime
module Net = Lnd_msgpass.Net

let pf = Printf.printf

let line () =
  pf "%s\n" (String.make 78 '-')

let header title =
  pf "\n";
  line ();
  pf "%s\n" title;
  line ()

let sweep_nf = [ (4, 1); (7, 2); (10, 3); (13, 4); (16, 5); (19, 6) ]

(* Run a prepared system until quiescence; fail loudly on stuck runs. *)
let run_q ?(max_steps = 50_000_000) sched =
  match Sched.run ~max_steps sched with
  | Sched.Quiescent -> ()
  | Sched.Budget_exhausted -> failwith "bench scenario exhausted its budget"
  | Sched.Condition_met -> ()

(* ------------------------------------------------------------------ *)
(* T1: verifiable register — fault-free cost of each operation vs n    *)
(* ------------------------------------------------------------------ *)

type opcost = { reads : int; writes : int; steps : int; rounds : int }

let measure_verifiable ~n ~f =
  let module Sys = Lnd_verifiable.System in
  let t = Sys.make ~policy:(Policy.random ~seed:42) ~n ~f () in
  let measure ~pid body =
    let before = Space.stats_of_pid t.space pid in
    let before_steps = Sched.steps t.sched in
    let before_writes = before.Space.writes in
    ignore (Sys.client t ~pid ~name:"op" body);
    run_q t.sched;
    let after = Space.stats_of_pid t.space pid in
    {
      reads = after.Space.reads - before.Space.reads;
      writes = after.Space.writes - before.Space.writes;
      steps = Sched.steps t.sched - before_steps;
      rounds = after.Space.writes - before_writes (* refined below *);
    }
  in
  let write_cost = measure ~pid:0 (fun () -> Sys.op_write t "v") in
  let sign_cost = measure ~pid:0 (fun () -> ignore (Sys.op_sign t "v")) in
  let read_cost = measure ~pid:1 (fun () -> ignore (Sys.op_read t ~pid:1)) in
  (* verify of a signed value; its writes are exactly its C_k round
     announcements, so writes = rounds *)
  let verify_cost =
    let c = measure ~pid:2 (fun () -> ignore (Sys.op_verify t ~pid:2 "v")) in
    { c with rounds = c.writes }
  in
  (write_cost, sign_cost, read_cost, verify_cost)

let table_t1 () =
  header
    "T1  Verifiable register (Algorithm 1), fault-free: per-operation cost\n\
    \    (reads/writes = all accesses by the operating process during the\n\
    \    operation, including its own background Help fiber — hence small\n\
    \    read noise on O(1) ops; VERIFY of a signed value)";
  pf "%4s %4s | %14s | %14s | %14s | %20s\n" "n" "f" "WRITE r/w" "SIGN r/w"
    "READ r/w" "VERIFY r/w (rounds)";
  List.iter
    (fun (n, f) ->
      let w, s, r, v = measure_verifiable ~n ~f in
      pf "%4d %4d | %6d / %5d | %6d / %5d | %6d / %5d | %6d / %5d (%d)\n" n f
        w.reads w.writes s.reads s.writes r.reads r.writes v.reads v.writes
        v.rounds)
    sweep_nf

(* ------------------------------------------------------------------ *)
(* T2: VERIFY under adversaries                                        *)
(* ------------------------------------------------------------------ *)

let measure_verify_under ~n ~f ~adversary ~value_signed =
  let module Sys = Lnd_verifiable.System in
  let byz = List.init f (fun i -> n - 1 - i) in
  let t = Sys.make ~policy:(Policy.random ~seed:7) ~n ~f ~byzantine:byz () in
  List.iter (fun pid -> adversary t pid) byz;
  if value_signed then begin
    ignore
      (Sys.client t ~pid:0 ~name:"w" (fun () ->
           Sys.op_write t "v";
           ignore (Sys.op_sign t "v")));
    run_q t.sched
  end;
  let before = Space.stats_of_pid t.space 1 in
  let before_steps = Sched.steps t.sched in
  let result = ref false in
  ignore
    (Sys.client t ~pid:1 ~name:"verify" (fun () ->
         result := Sys.op_verify t ~pid:1 "v"));
  run_q t.sched;
  let after = Space.stats_of_pid t.space 1 in
  ( after.Space.reads - before.Space.reads,
    after.Space.writes - before.Space.writes,
    Sched.steps t.sched - before_steps,
    !result )

let table_t2 () =
  header
    "T2  VERIFY cost under f Byzantine processes (reader p1's accesses;\n\
    \    rounds = writes; every VERIFY terminates, relay never violated)";
  pf "%4s %4s | %-22s | %8s %8s %8s | %s\n" "n" "f" "adversary" "reads"
    "rounds" "steps" "verdict";
  let adversaries =
    [
      ( "none (signed)",
        (fun (_ : Lnd_verifiable.System.t) (_ : int) -> ()),
        true );
      ( "naysayers (signed)",
        (fun (t : Lnd_verifiable.System.t) pid ->
          ignore (Lnd_byz.Byz_verifiable.spawn_naysayer t.sched t.regs ~pid)),
        true );
      ( "flip-floppers (signed)",
        (fun (t : Lnd_verifiable.System.t) pid ->
          ignore
            (Lnd_byz.Byz_verifiable.spawn_flipflop t.sched t.regs ~pid ~v:"v")),
        true );
      ( "false-witness (unsigned)",
        (fun (t : Lnd_verifiable.System.t) pid ->
          ignore
            (Lnd_byz.Byz_verifiable.spawn_false_witness t.sched t.regs ~pid
               ~v:"v")),
        false );
    ]
  in
  List.iter
    (fun (n, f) ->
      List.iter
        (fun (name, adv, signed) ->
          let reads, rounds, steps, verdict =
            measure_verify_under ~n ~f ~adversary:adv ~value_signed:signed
          in
          pf "%4d %4d | %-22s | %8d %8d %8d | %b\n" n f name reads rounds
            steps verdict)
        adversaries)
    [ (4, 1); (7, 2); (10, 3) ]

(* T2b: VERIFY round-count distribution across schedules *)

let table_t2b () =
  header
    "T2b VERIFY round-count distribution across 100 random schedules\n\
    \    (n=7, f=2; rounds = C_k increments of one reader verifying a\n\
    \    signed value)";
  pf "%-22s | %6s %6s %6s\n" "adversary" "min" "mean" "max";
  let measure adversary =
    let rounds =
      List.map
        (fun seed ->
          let module Sys = Lnd_verifiable.System in
          let n = 7 and f = 2 in
          let byz = List.init f (fun i -> n - 1 - i) in
          let has_adv = adversary <> `None in
          let t =
            Sys.make ~policy:(Policy.random ~seed) ~n ~f
              ~byzantine:(if has_adv then byz else [])
              ()
          in
          (match adversary with
          | `None -> ()
          | `Naysayers ->
              List.iter
                (fun pid ->
                  ignore (Lnd_byz.Byz_verifiable.spawn_naysayer t.sched t.regs ~pid))
                byz
          | `Flipfloppers ->
              List.iter
                (fun pid ->
                  ignore
                    (Lnd_byz.Byz_verifiable.spawn_flipflop t.sched t.regs ~pid
                       ~v:"v"))
                byz);
          ignore
            (Sys.client t ~pid:0 ~name:"w" (fun () ->
                 Sys.op_write t "v";
                 ignore (Sys.op_sign t "v")));
          run_q t.sched;
          let before = (Space.stats_of_pid t.space 1).Space.writes in
          ignore
            (Sys.client t ~pid:1 ~name:"v" (fun () ->
                 ignore (Sys.op_verify t ~pid:1 "v")));
          run_q t.sched;
          (Space.stats_of_pid t.space 1).Space.writes - before)
        (List.init 100 (fun i -> i))
    in
    let mn = List.fold_left min max_int rounds in
    let mx = List.fold_left max 0 rounds in
    let mean =
      float_of_int (List.fold_left ( + ) 0 rounds)
      /. float_of_int (List.length rounds)
    in
    (mn, mean, mx)
  in
  List.iter
    (fun (name, adv) ->
      let mn, mean, mx = measure adv in
      pf "%-22s | %6d %6.1f %6d\n" name mn mean mx)
    [
      ("none (fault-free)", `None);
      ("naysayers", `Naysayers);
      ("flip-floppers", `Flipfloppers);
    ]

(* ------------------------------------------------------------------ *)
(* T3: sticky register cost vs n                                       *)
(* ------------------------------------------------------------------ *)

let measure_sticky ~n ~f =
  let module Sys = Lnd_sticky.System in
  let t = Sys.make ~policy:(Policy.random ~seed:42) ~n ~f () in
  let before = Space.stats_of_pid t.space 0 in
  let s0 = Sched.steps t.sched in
  ignore (Sys.client t ~pid:0 ~name:"w" (fun () -> Sys.op_write t "v"));
  run_q t.sched;
  let after = Space.stats_of_pid t.space 0 in
  let wcost =
    ( after.Space.reads - before.Space.reads,
      after.Space.writes - before.Space.writes,
      Sched.steps t.sched - s0 )
  in
  let before = Space.stats_of_pid t.space 1 in
  let s1 = Sched.steps t.sched in
  ignore
    (Sys.client t ~pid:1 ~name:"r" (fun () -> ignore (Sys.op_read t ~pid:1)));
  run_q t.sched;
  let after = Space.stats_of_pid t.space 1 in
  let rcost =
    ( after.Space.reads - before.Space.reads,
      after.Space.writes - before.Space.writes,
      Sched.steps t.sched - s1 )
  in
  (wcost, rcost)

let table_t3 () =
  header
    "T3  Sticky register (Algorithm 2), fault-free: WRITE and READ cost";
  pf "%4s %4s | %24s | %24s\n" "n" "f" "WRITE r/w (steps)" "READ r/w (steps)";
  List.iter
    (fun (n, f) ->
      let (wr, ww, ws), (rr, rw, rs) = measure_sticky ~n ~f in
      pf "%4d %4d | %8d / %4d (%6d) | %8d / %4d (%6d)\n" n f wr ww ws rr rw rs)
    sweep_nf

(* T3b: sticky READ under adversaries *)

let measure_sticky_read_under ~n ~f ~adversary =
  let module Sys = Lnd_sticky.System in
  let byz = List.init f (fun i -> n - 1 - i) in
  let t = Sys.make ~policy:(Policy.random ~seed:7) ~n ~f ~byzantine:byz () in
  List.iter (fun pid -> adversary t pid) byz;
  ignore (Sys.client t ~pid:0 ~name:"w" (fun () -> Sys.op_write t "v"));
  run_q t.sched;
  let before = Space.stats_of_pid t.space 1 in
  let s0 = Sched.steps t.sched in
  let result = ref None in
  ignore
    (Sys.client t ~pid:1 ~name:"r" (fun () -> result := Sys.op_read t ~pid:1));
  run_q t.sched;
  let after = Space.stats_of_pid t.space 1 in
  ( after.Space.reads - before.Space.reads,
    after.Space.writes - before.Space.writes,
    Sched.steps t.sched - s0,
    !result )

let table_t3b () =
  header
    "T3b Sticky READ under f Byzantine processes (reader p1's accesses;\n\
    \    rounds = writes; READ always terminates and returns the written \
     value)";
  pf "%4s %4s | %-14s | %8s %8s %8s | %s\n" "n" "f" "adversary" "reads"
    "rounds" "steps" "result";
  let adversaries =
    [
      ("none", fun (_ : Lnd_sticky.System.t) (_ : int) -> ());
      ( "naysayers",
        fun (t : Lnd_sticky.System.t) pid ->
          ignore (Lnd_byz.Byz_sticky.spawn_naysayer t.sched t.regs ~pid) );
      ( "flip-floppers",
        fun (t : Lnd_sticky.System.t) pid ->
          ignore (Lnd_byz.Byz_sticky.spawn_flipflop t.sched t.regs ~pid ~v:"v") );
    ]
  in
  List.iter
    (fun (n, f) ->
      List.iter
        (fun (name, adv) ->
          let reads, rounds, steps, result =
            measure_sticky_read_under ~n ~f ~adversary:adv
          in
          pf "%4d %4d | %-14s | %8d %8d %8d | %s\n" n f name reads rounds
            steps
            (match result with Some v -> v | None -> "⊥"))
        adversaries)
    [ (4, 1); (7, 2); (10, 3) ]

(* ------------------------------------------------------------------ *)
(* T4: signature-free (this paper) vs signature-based baseline         *)
(* ------------------------------------------------------------------ *)

let measure_sigbase ~n ~f =
  let module Sv = Lnd_sigbase.Sig_verifiable in
  let space = Space.create ~n in
  let sched = Sched.create ~space ~choose:(Policy.random ~seed:42) in
  let oracle = Lnd_crypto.Sigoracle.create () in
  let regs = Sv.alloc space { Sv.n; f } ~oracle in
  let writer = Sv.writer regs in
  ignore
    (Sched.spawn sched ~pid:0 ~name:"w" (fun () ->
         Sv.write writer "v";
         ignore (Sv.sign writer "v")));
  run_q sched;
  let before = Space.stats_of_pid space 1 in
  ignore
    (Sched.spawn sched ~pid:1 ~name:"v" (fun () ->
         ignore (Sv.verify (Sv.reader regs ~pid:1) "v")));
  run_q sched;
  let after = Space.stats_of_pid space 1 in
  ( after.Space.reads - before.Space.reads,
    after.Space.writes - before.Space.writes )

let table_t4 () =
  header
    "T4  VERIFY: signature-free (Algorithm 1) vs signature-based baseline\n\
    \    (reader's own accesses; resilience = max Byzantine f tolerated)";
  pf "%4s | %20s | %20s | %16s | %16s\n" "n" "Alg.1 verify r/w"
    "baseline verify r/w" "Alg.1 max f" "baseline max f";
  List.iter
    (fun (n, f) ->
      let _, _, _, v = measure_verifiable ~n ~f in
      let br, bw = measure_sigbase ~n ~f in
      pf "%4d | %12d / %5d | %12d / %5d | %16s | %16s\n" n v.reads v.writes
        br bw
        (Printf.sprintf "%d  (n>3f)" ((n - 1) / 3))
        (Printf.sprintf "%d  (n>f)+crypto" (n - 1)))
    sweep_nf

(* ------------------------------------------------------------------ *)
(* T5: broadcast family                                                *)
(* ------------------------------------------------------------------ *)

let measure_neq ~n ~f =
  let module B = Lnd_broadcast.Broadcast in
  let space = Space.create ~n in
  let sched = Sched.create ~space ~choose:(Policy.random ~seed:42) in
  let bc = B.Neq.create space sched ~n ~f ~slots:1 ~byzantine:[] () in
  let s0 = Sched.steps sched in
  ignore
    (Sched.spawn sched ~pid:0 ~name:"s" (fun () ->
         B.Neq.bcast bc ~sender:0 ~slot:0 "m"));
  run_q sched;
  let bsteps = Sched.steps sched - s0 in
  let s1 = Sched.steps sched in
  ignore
    (Sched.spawn sched ~pid:1 ~name:"d" (fun () ->
         ignore (B.Neq.deliver bc ~reader:1 ~sender:0 ~slot:0)));
  run_q sched;
  (bsteps, Sched.steps sched - s1)

let measure_st ~n ~f =
  let module St = Lnd_msgpass.Auth_broadcast in
  let space = Space.create ~n in
  let sched = Sched.create ~space ~choose:(Policy.random ~seed:42) in
  let net = Net.create space ~n in
  let delivered = Array.make n false in
  let procs =
    Array.init n (fun pid ->
        let ep = Lnd_msgpass.Transport.of_net (Net.port net ~pid) in
        let t =
          St.create ep ~n ~f ~accept_cb:(fun ~sender:_ ~value:_ ~seq:_ ->
              delivered.(pid) <- true)
        in
        ignore
          (Sched.spawn sched ~pid ~name:"st" ~daemon:true (fun () ->
               St.daemon t));
        t)
  in
  let s0 = Sched.steps sched in
  ignore
    (Sched.spawn sched ~pid:0 ~name:"b" (fun () ->
         ignore (St.broadcast procs.(0) "m")));
  ignore
    (Sched.spawn sched ~pid:1 ~name:"wait" (fun () ->
         while not (Array.for_all (fun d -> d) delivered) do
           Sched.yield ()
         done));
  run_q sched;
  (net.Net.sends, Sched.steps sched - s0)

let table_t5 () =
  header
    "T5  Broadcast family: sticky-based non-equivocating broadcast vs\n\
    \    Srikanth-Toueg authenticated broadcast (message passing)";
  pf "%4s %4s | %26s | %30s\n" "n" "f" "NEQ bcast/deliver steps"
    "ST msgs sent / steps to all-acc";
  List.iter
    (fun (n, f) ->
      let bsteps, dsteps = measure_neq ~n ~f in
      let msgs, ssteps = measure_st ~n ~f in
      pf "%4d %4d | %12d / %11d | %15d / %13d\n" n f bsteps dsteps msgs ssteps)
    [ (4, 1); (7, 2); (10, 3) ]

(* ------------------------------------------------------------------ *)
(* T6: the impossibility experiment (Theorem 23 / Figures 1-3)         *)
(* ------------------------------------------------------------------ *)

let table_t6 () =
  header
    "T6  Theorem 23 executable (Figures 1-3): register-reset adversary vs\n\
    \    test-or-set from either register — attack success at n=3f vs n=3f+1";
  pf "%4s %4s | %-10s | %8s | %9s | %9s | %s\n" "n" "f" "built from"
    "regime" "TEST(p_a)" "TEST'(p_b)" "relay";
  List.iter
    (fun f ->
      List.iter
        (fun n ->
          List.iter
            (fun (impl, impl_name) ->
              let o =
                Lnd_testorset.Impossibility.run_attack ~seed:5 ~impl ~n ~f ()
              in
              pf "%4d %4d | %-10s | %8s | %9d | %9d | %s\n" n f impl_name
                (if n <= 3 * f then "n<=3f" else "n>3f")
                o.Lnd_testorset.Impossibility.test_a
                o.Lnd_testorset.Impossibility.test_b
                (if o.Lnd_testorset.Impossibility.relay_violated then
                   "VIOLATED (impossibility)"
                 else "holds (Theorems 14/19)"))
            [
              (Lnd_testorset.Impossibility.Via_verifiable, "verifiable");
              (Lnd_testorset.Impossibility.Via_sticky, "sticky");
            ])
        [ 3 * f; (3 * f) + 1 ])
    [ 1; 2; 3 ]

(* ------------------------------------------------------------------ *)
(* T7: message-passing emulation (Section 9)                           *)
(* ------------------------------------------------------------------ *)

let measure_emu ~n ~f =
  let module Regemu = Lnd_msgpass.Regemu in
  let space = Space.create ~n in
  let sched = Sched.create ~space ~choose:(Policy.random ~seed:42) in
  let emu = Regemu.create space ~n ~f in
  for pid = 0 to n - 1 do
    ignore
      (Sched.spawn sched ~pid ~name:"rep" ~daemon:true (fun () ->
           Regemu.replica_daemon emu ~pid))
  done;
  let cell =
    Regemu.allocator emu ~name:"x" ~owner:0 ~init:(Univ.inj Univ.int 0) ()
  in
  let m0 = Regemu.messages_sent emu in
  ignore
    (Sched.spawn sched ~pid:0 ~name:"w" (fun () ->
         Cell.write cell (Univ.inj Univ.int 1)));
  run_q sched;
  let wmsgs = Regemu.messages_sent emu - m0 in
  let m1 = Regemu.messages_sent emu in
  ignore
    (Sched.spawn sched ~pid:1 ~name:"r" (fun () -> ignore (Cell.read cell)));
  run_q sched;
  (wmsgs, Regemu.messages_sent emu - m1)

let table_t7 () =
  header
    "T7  Register emulation over message passing (Section 9 corollary):\n\
    \    messages per emulated operation";
  pf "%4s %4s | %16s | %16s\n" "n" "f" "WRITE msgs" "READ msgs";
  List.iter
    (fun (n, f) ->
      let w, r = measure_emu ~n ~f in
      pf "%4d %4d | %16d | %16d\n" n f w r)
    [ (4, 1); (7, 2); (10, 3) ]


(* ------------------------------------------------------------------ *)
(* T8: ablations (design choices from the paper's prose)               *)
(* ------------------------------------------------------------------ *)

let table_t8 () =
  header
    "T8  Ablations: each design choice removed -> predicted failure appears\n\
    \    (see test/test_ablation.ml for the full scenarios)";
  pf "%-34s | %-22s | %s\n" "variant" "paper anchor" "observed";
  (* A2: no-wait write *)
  let module St = Lnd_sticky.Sticky in
  let module Sabl = Lnd_sticky.Ablation in
  let a2 nowait seed =
    let n = 7 and f = 2 in
    let space = Space.create ~n in
    let base = Policy.random ~seed in
    let freeze = 50_000 in
    let choose (sched : Sched.t) (ready : Sched.fiber array) =
      if sched.Sched.steps > freeze then base sched ready
      else begin
        let awake =
          Array.to_list ready
          |> List.mapi (fun i fb -> (i, fb))
          |> List.filter (fun (_, (fb : Sched.fiber)) ->
                 fb.Sched.pid < 1 || fb.Sched.pid > 4)
        in
        match awake with
        | [] -> base sched ready
        | _ ->
            let i = base sched (Array.of_list (List.map snd awake)) in
            fst (List.nth awake i)
      end
    in
    let sched = Sched.create ~space ~choose in
    let regs = St.alloc space { St.n; f } in
    for pid = 0 to n - 1 do
      ignore
        (Sched.spawn sched ~pid ~name:"h" ~daemon:true (fun () ->
             St.help regs ~pid))
    done;
    let writer = St.writer regs in
    let wf =
      Sched.spawn sched ~pid:0 ~name:"w" (fun () ->
          if nowait then Sabl.write_nowait writer "v" else St.write writer "v")
    in
    ignore
      (Sched.spawn sched ~pid:5 ~name:"pace" (fun () ->
           for _ = 1 to 200_000 do
             Sched.yield ()
           done));
    let wdone (_ : Sched.t) =
      match wf.Sched.state with Sched.Finished _ -> true | _ -> false
    in
    ignore (Sched.run ~max_steps:4_000_000 ~until:wdone sched);
    let got = ref None in
    let rf =
      Sched.spawn sched ~pid:6 ~name:"r" (fun () ->
          got := St.read (St.reader regs ~pid:6))
    in
    ignore
      (Sched.spawn sched ~pid:5 ~name:"pace2" (fun () ->
           for _ = 1 to 200_000 do
             Sched.yield ()
           done));
    let rdone (_ : Sched.t) =
      match rf.Sched.state with Sched.Finished _ -> true | _ -> false
    in
    ignore (Sched.run ~max_steps:4_000_000 ~until:rdone sched);
    !got
  in
  let count_bot nowait =
    List.length
      (List.filter (fun seed -> a2 nowait seed = None) (List.init 20 (fun i -> i)))
  in
  pf "%-34s | %-22s | READ=⊥ after completed WRITE in %d/20 schedules\n"
    "WRITE without witness wait" "§7.1 remark" (count_bot true);
  pf "%-34s | %-22s | READ=⊥ after completed WRITE in %d/20 schedules\n"
    "Algorithm 2 WRITE (with wait)" "lines 3-5" (count_bot false);
  pf "%-34s | %-22s | %s\n" "one-shot strawman VERIFY" "§5.1"
    "relay violated (test A1)";
  pf "%-34s | %-22s | %s\n" "lax witness policy (sticky)" "§7.1"
    "witnesses split; READ stalls (test A3)"

(* ------------------------------------------------------------------ *)
(* T9: derived objects built on the registers                          *)
(* ------------------------------------------------------------------ *)

let table_t9 () =
  header
    "T9  Derived objects (Section 1.1/1.2 applications): cost per operation";
  pf "%4s %4s | %-26s | %12s | %12s\n" "n" "f" "object" "op1 steps" "op2 steps";
  List.iter
    (fun (n, f) ->
      (* reliable broadcast object *)
      let space = Space.create ~n in
      let sched = Sched.create ~space ~choose:(Policy.random ~seed:42) in
      let rb = Lnd_broadcast.Reliable.create space sched ~n ~f ~slots:1 () in
      let s0 = Sched.steps sched in
      ignore
        (Sched.spawn sched ~pid:0 ~name:"b" (fun () ->
             ignore (Lnd_broadcast.Reliable.bcast rb ~sender:0 "m")));
      run_q sched;
      let bsteps = Sched.steps sched - s0 in
      let s1 = Sched.steps sched in
      ignore
        (Sched.spawn sched ~pid:1 ~name:"d" (fun () ->
             ignore (Lnd_broadcast.Reliable.deliver rb ~reader:1 ~sender:0 ~slot:0)));
      run_q sched;
      pf "%4d %4d | %-26s | %12d | %12d\n" n f "reliable broadcast (b/d)"
        bsteps
        (Sched.steps sched - s1);
      (* asset transfer *)
      let space = Space.create ~n in
      let sched = Sched.create ~space ~choose:(Policy.random ~seed:42) in
      let at =
        Lnd_asset.Asset.create space sched ~n ~f ~slots:1 ~initial_balance:100
          ()
      in
      let s0 = Sched.steps sched in
      ignore
        (Sched.spawn sched ~pid:0 ~name:"t" (fun () ->
             ignore (Lnd_asset.Asset.transfer at ~src:0 ~dst:1 ~amount:10)));
      run_q sched;
      let tsteps = Sched.steps sched - s0 in
      let s1 = Sched.steps sched in
      ignore
        (Sched.spawn sched ~pid:2 ~name:"bal" (fun () ->
             ignore (Lnd_asset.Asset.balance at ~pid:2 ~acct:0)));
      run_q sched;
      pf "%4d %4d | %-26s | %12d | %12d\n" n f "asset transfer (xfer/bal)"
        tsteps
        (Sched.steps sched - s1);
      (* snapshot *)
      let space = Space.create ~n in
      let sched = Sched.create ~space ~choose:(Policy.random ~seed:42) in
      let snap = Lnd_snapshot.Snapshot.create space sched ~n ~f () in
      let s0 = Sched.steps sched in
      ignore
        (Sched.spawn sched ~pid:0 ~name:"u" (fun () ->
             Lnd_snapshot.Snapshot.update snap ~pid:0 "x"));
      run_q sched;
      let usteps = Sched.steps sched - s0 in
      let s1 = Sched.steps sched in
      ignore
        (Sched.spawn sched ~pid:1 ~name:"s" (fun () ->
             ignore (Lnd_snapshot.Snapshot.scan snap ~pid:1)));
      run_q sched;
      pf "%4d %4d | %-26s | %12d | %12d\n" n f "snapshot (update/scan)"
        usteps
        (Sched.steps sched - s1))
    [ (4, 1); (7, 2) ]

(* ------------------------------------------------------------------ *)
(* T10: fuzz sweep aggregate                                           *)
(* ------------------------------------------------------------------ *)

let table_t10 () =
  header
    "T10 Randomized scenario sweep (lnd_fuzz): 40 seeded scenarios across\n\
    \    both registers and all adversary strategies";
  let count = 40 in
  let failures = ref 0 in
  let total_steps = ref 0 in
  let total_ops = ref 0 in
  let lin_checked = ref 0 in
  for seed = 0 to count - 1 do
    match Lnd_fuzz.Fuzz.run_seed seed with
    | Ok r ->
        total_steps := !total_steps + r.Lnd_fuzz.Fuzz.steps;
        total_ops := !total_ops + r.Lnd_fuzz.Fuzz.operations;
        if r.Lnd_fuzz.Fuzz.checked_linearizability then incr lin_checked
    | Error msg ->
        incr failures;
        pf "  FAIL seed %d: %s\n" seed msg
  done;
  pf "scenarios: %d, failures: %d\n" count !failures;
  pf "total operations: %d, total steps: %d (avg %d steps/scenario)\n"
    !total_ops !total_steps (!total_steps / count);
  pf "full Byzantine-linearizability checked on %d/%d scenarios\n\
     (monitors on all)\n"
    !lin_checked count

(* ------------------------------------------------------------------ *)
(* T11: retransmission overhead under link faults                      *)
(* ------------------------------------------------------------------ *)

let table_t11 () =
  header
    "T11 Retransmission overhead (Rlink over Faultnet), ST broadcast\n\
    \    n=4 f=1, 2 broadcasters x 2 messages; the drop=0 row shows the\n\
    \    zero-fault overhead of the reliable-link layer itself";
  let module Chaos = Lnd_fuzz.Chaos in
  let module Faultnet = Lnd_msgpass.Faultnet in
  let mk_plan ~drop ~cut_len =
    if drop = 0 && cut_len = 0 then Faultnet.zero
    else
      {
        Faultnet.fault_seed = 42;
        drop_pct = drop;
        dup_pct = 0;
        delay_pct = 0;
        max_delay = 0;
        fair_burst = 2;
        partitions =
          (if cut_len = 0 then []
           else
             [
               {
                 Faultnet.cut_from = 200;
                 cut_until = 200 + cut_len;
                 island = [ 2 ];
               };
             ]);
      }
  in
  pf "%6s %9s | %8s | %6s %8s %10s | %8s\n" "drop%" "cut(len)" "steps"
    "data" "retrans" "redundant" "sends";
  List.iter
    (fun (drop, cut_len) ->
      let s =
        {
          Chaos.seed = 7;
          protocol = Chaos.St_broadcast;
          n = 4;
          f = 1;
          plan = mk_plan ~drop ~cut_len;
          adversary = Chaos.No_adversary;
          msgs = 2;
          crashes = [];
          epoch_bump = true;
        }
      in
      match Chaos.run s with
      | Ok r ->
          pf "%6d %9d | %8d | %6d %8d %10d | %8d\n" drop cut_len
            r.Chaos.steps r.Chaos.data_sent r.Chaos.retransmissions
            r.Chaos.redundant r.Chaos.net_stats.Faultnet.sent
      | Error msg -> pf "%6d %9d | FAIL: %s\n" drop cut_len msg)
    [ (0, 0); (10, 0); (20, 0); (40, 0); (20, 1000); (20, 4000) ]

(* ------------------------------------------------------------------ *)
(* T12: durability — WAL throughput and crash-recovery overhead        *)
(* ------------------------------------------------------------------ *)

let table_t12 () =
  header
    "T12 Durability (lib/durable): WAL append/sync/snapshot cost and\n\
    \    recovery replay, then the journaling + crash-recovery overhead\n\
    \    of the chaos register scenario (same seed: volatile baseline vs\n\
    \    the durable stack with a crash-restart injected)";
  let module Disk = Lnd_durable.Disk in
  let module Wal = Lnd_durable.Wal in
  let module Chaos = Lnd_fuzz.Chaos in
  (* WAL throughput in the deterministic cost model: 10k records under
     three sync cadences, then a snapshotted variant, then recovery. *)
  let total = 10_000 in
  let wal_rows =
    List.map
      (fun (label, batch, snap_every) ->
        let d = Disk.create () in
        let w = Wal.create d ~name:"wal" in
        for i = 1 to total do
          Wal.append w (Printf.sprintf "W %d %d" (i mod 7) i);
          if i mod batch = 0 then Wal.sync w;
          if snap_every > 0 && Wal.appended w >= snap_every then
            Wal.snapshot w [ Printf.sprintf "W %d %d" (i mod 7) i ]
        done;
        Wal.sync w;
        let st = Wal.stats w in
        let recovered, _ = Wal.recover d ~name:"wal" in
        (label, batch, st, Disk.fsync_count d, List.length recovered))
      [
        ("sync each", 1, 0);
        ("sync /16", 16, 0);
        ("sync /256", 256, 0);
        ("snapshot /512", 16, 512);
      ]
  in
  pf "%-14s | %8s %8s %9s %10s | %9s\n" "cadence" "appends" "fsyncs"
    "snapshots" "bytes" "replayed";
  List.iter
    (fun (label, _, st, fsyncs, replayed) ->
      pf "%-14s | %8d %8d %9d %10d | %9d\n" label st.Wal.appends fsyncs
        st.Wal.snapshots st.Wal.bytes replayed)
    wal_rows;
  (* The end-to-end price: the same seeded register scenario run
     volatile (crash events stripped — no WAL anywhere) and with the
     durable stack plus an actual crash-restart. *)
  let base = Chaos.generate_crash 5 in
  pf "\n%-28s | %8s | %6s %8s | %7s\n" "chaos register scenario" "steps"
    "data" "retrans" "fsyncs";
  let chaos_rows =
    List.filter_map
      (fun (label, s) ->
        match Chaos.run s with
        | Ok r ->
            pf "%-28s | %8d | %6d %8d | %7d\n" label r.Chaos.steps
              r.Chaos.data_sent r.Chaos.retransmissions r.Chaos.fsyncs;
            Some (label, r)
        | Error msg ->
            pf "%-28s | FAIL: %s\n" label msg;
            None)
      [
        ("volatile (no crash)", { base with Chaos.crashes = [] });
        ("durable + crash + recovery", base);
      ]
  in
  (* Machine-readable copy for the repo root. *)
  let oc = open_out "BENCH_T12.json" in
  let j = Printf.fprintf in
  j oc "{\n  \"table\": \"T12\",\n  \"wal\": [\n";
  List.iteri
    (fun i (label, batch, st, fsyncs, replayed) ->
      j oc
        "    {\"cadence\": %S, \"batch\": %d, \"appends\": %d, \"fsyncs\": \
         %d, \"snapshots\": %d, \"bytes\": %d, \"replayed\": %d}%s\n"
        label batch st.Wal.appends fsyncs st.Wal.snapshots st.Wal.bytes
        replayed
        (if i = List.length wal_rows - 1 then "" else ","))
    wal_rows;
  j oc "  ],\n  \"chaos\": [\n";
  List.iteri
    (fun i (label, r) ->
      j oc
        "    {\"scenario\": %S, \"seed\": %d, \"steps\": %d, \"data_sent\": \
         %d, \"retransmissions\": %d, \"redundant\": %d, \"fsyncs\": %d}%s\n"
        label r.Chaos.scenario.Chaos.seed r.Chaos.steps r.Chaos.data_sent
        r.Chaos.retransmissions r.Chaos.redundant r.Chaos.fsyncs
        (if i = List.length chaos_rows - 1 then "" else ","))
    chaos_rows;
  j oc "  ]\n}\n";
  close_out oc;
  pf "(machine-readable copy written to BENCH_T12.json)\n"

(* ------------------------------------------------------------------ *)
(* T13: observability — trace-derived metrics registry                 *)
(* ------------------------------------------------------------------ *)

let table_t13 () =
  header
    "T13 Observability (lib/obs): chaos scenarios replayed with the\n\
    \    recording trace sink installed; the metrics registry is harvested\n\
    \    from the causal event stream (Metrics.of_events). The same runs\n\
    \    under the default Null sink record nothing and stay byte-identical";
  let module Chaos = Lnd_fuzz.Chaos in
  let module Trace = Lnd_obs.Trace in
  let module Metrics = Lnd_obs.Metrics in
  let rows =
    List.map
      (fun (label, s) ->
        let _, tr = Chaos.run_traced s in
        let m = Metrics.of_events (Trace.events tr) in
        (label, Trace.size tr, m))
      [
        ("st-broadcast, link faults", Chaos.generate 4);
        ("register, link faults", Chaos.generate 1);
        ("register, crash+recover", Chaos.generate_crash 3);
      ]
  in
  let sum_suffix m suffix =
    List.fold_left
      (fun acc n ->
        if
          String.length n > 5 + String.length suffix
          && String.sub n 0 5 = "span."
          && String.sub n
               (String.length n - String.length suffix)
               (String.length suffix)
             = suffix
        then acc + Metrics.counter m n
        else acc)
      0 (Metrics.names m)
  in
  pf "%-26s | %7s %5s %4s | %7s %5s %5s | %7s %6s | %6s %6s\n" "scenario"
    "events" "spans" "abrt" "deliver" "drop" "dup" "retrans" "redund" "fsyncs"
    "bytes";
  List.iter
    (fun (label, events, m) ->
      pf "%-26s | %7d %5d %4d | %7d %5d %5d | %7d %6d | %6d %6d\n" label
        events
        (sum_suffix m ".count")
        (sum_suffix m ".aborted")
        (Metrics.counter m "net.deliver")
        (Metrics.counter m "net.drop")
        (Metrics.counter m "net.dup")
        (Metrics.counter m "rlink.retransmissions")
        (Metrics.counter m "rlink.redundant")
        (Metrics.counter m "wal.fsyncs")
        (Metrics.counter m "wal.bytes"))
    rows;
  let phist m name =
    match Metrics.histogram m name with
    | Some h -> Printf.sprintf "%d/%d (n=%d)" h.Metrics.p50 h.Metrics.p95 h.Metrics.count
    | None -> "-"
  in
  pf "\n%-26s | %16s | %16s | %16s\n" "latency (p50/p95 steps)" "quorum depth"
    "fsync latency" "delay ticks";
  List.iter
    (fun (label, _, m) ->
      pf "%-26s | %16s | %16s | %16s\n" label
        (phist m "reg.quorum.count")
        (phist m "wal.fsync.latency")
        (phist m "net.delay.ticks"))
    rows;
  (* Machine-readable copy for the repo root / CI artifact. *)
  let oc = open_out "BENCH_T13.json" in
  let j = Printf.fprintf in
  j oc "{\n  \"table\": \"T13\",\n  \"scenarios\": [\n";
  List.iteri
    (fun i (label, events, m) ->
      let c = Metrics.counter m in
      let h name =
        match Metrics.histogram m name with
        | Some h ->
            Printf.sprintf "{\"p50\": %d, \"p95\": %d, \"count\": %d}"
              h.Metrics.p50 h.Metrics.p95 h.Metrics.count
        | None -> "null"
      in
      j oc
        "    {\"scenario\": %S, \"events\": %d, \"spans\": %d, \"aborted\": \
         %d,\n\
        \     \"deliver\": %d, \"drop\": %d, \"dup\": %d, \"retrans\": %d, \
         \"redundant\": %d,\n\
        \     \"fsyncs\": %d, \"wal_bytes\": %d,\n\
        \     \"quorum_depth\": %s, \"fsync_latency\": %s, \"delay_ticks\": \
         %s}%s\n"
        label events
        (sum_suffix m ".count")
        (sum_suffix m ".aborted")
        (c "net.deliver") (c "net.drop") (c "net.dup")
        (c "rlink.retransmissions")
        (c "rlink.redundant") (c "wal.fsyncs") (c "wal.bytes")
        (h "reg.quorum.count")
        (h "wal.fsync.latency")
        (h "net.delay.ticks")
        (if i = List.length rows - 1 then "" else ","))
    rows;
  j oc "  ]\n}\n";
  close_out oc;
  pf "(machine-readable copy written to BENCH_T13.json)\n"

(* ------------------------------------------------------------------ *)
(* T14: accountability — auditor overhead and blame quality            *)
(* ------------------------------------------------------------------ *)

let table_t14 () =
  header
    "T14 Accountability (lib/audit): the same chaos batches replayed with\n\
    \    the forensic auditor fanned out next to the recording trace.\n\
    \    Overhead is the claim volume the auditor digests online; quality\n\
    \    is recall over detectable Byzantine pids with zero false blame";
  let module Chaos = Lnd_fuzz.Chaos in
  let module Audit = Lnd_audit.Audit in
  let seeds = 20 in
  let sweep label gen =
    let runs = ref 0
    and failed = ref 0
    and events = ref 0
    and claims = ref 0
    and stalls = ref 0
    and accusations = ref 0
    and detectable = ref 0
    and attributed = ref 0
    and false_blame = ref 0 in
    for seed = 1 to seeds do
      let s = gen seed in
      let out, _tr, rp = Chaos.run_audited ~keep:Chaos.compact_keep s in
      incr runs;
      (match out with Ok _ -> () | Error _ -> incr failed);
      events := !events + rp.Audit.rp_events;
      claims := !claims + rp.Audit.rp_claims;
      stalls := !stalls + rp.Audit.rp_stalls;
      accusations := !accusations + List.length rp.Audit.rp_accusations;
      let acc = Audit.accused rp in
      let det = Chaos.detectable s in
      let byz = Chaos.byzantine_pids s in
      detectable := !detectable + List.length det;
      attributed :=
        !attributed + List.length (List.filter (fun p -> List.mem p acc) det);
      false_blame :=
        !false_blame
        + List.length (List.filter (fun p -> not (List.mem p byz)) acc)
    done;
    ( label,
      !runs,
      !failed,
      !events,
      !claims,
      !stalls,
      !accusations,
      !detectable,
      !attributed,
      !false_blame )
  in
  let rows =
    [
      sweep "link chaos (seeds 1-20)" Chaos.generate;
      sweep "crash chaos (seeds 1-20)" Chaos.generate_crash;
    ]
  in
  pf "%-24s | %4s %4s | %7s %7s %6s | %5s %5s %5s %5s\n" "batch" "runs"
    "fail" "events" "claims" "stalls" "accus" "det" "attr" "false";
  List.iter
    (fun (label, runs, failed, events, claims, stalls, accus, det, attr, fb) ->
      pf "%-24s | %4d %4d | %7d %7d %6d | %5d %5d %5d %5d\n" label runs
        failed events claims stalls accus det attr fb)
    rows;
  let oc = open_out "BENCH_T14.json" in
  let j = Printf.fprintf in
  j oc "{\n  \"table\": \"T14\",\n  \"sweeps\": [\n";
  List.iteri
    (fun i (label, runs, failed, events, claims, stalls, accus, det, attr, fb)
       ->
      j oc
        "    {\"batch\": %S, \"runs\": %d, \"failed\": %d, \"events\": %d, \
         \"claims\": %d,\n\
        \     \"stalls\": %d, \"accusations\": %d, \"detectable\": %d, \
         \"attributed\": %d, \"false_blame\": %d}%s\n"
        label runs failed events claims stalls accus det attr fb
        (if i = List.length rows - 1 then "" else ","))
    rows;
  j oc "  ]\n}\n";
  close_out oc;
  pf "(machine-readable copy written to BENCH_T14.json)\n"

let table_t15 () =
  header
    "T15 Model checking (lib/runtime Explore + lib/fuzz Mcheck): DPOR with\n\
    \    sleep sets and park-on-yield vs the naive DFS baseline, on the\n\
    \    paper's smallest configurations (n = 4, f = 1, one scripted\n\
    \    colluder). DPOR exhausts the bounded space (preemption bound 0);\n\
    \    the naive DFS blows the same schedule budget without finishing,\n\
    \    so its reduction factor is a lower bound";
  let module M = Lnd_fuzz.Mcheck in
  let module E = Lnd_runtime.Explore in
  let max_steps = 600 in
  (* Explore one config, accumulating register accesses across runs via
     the Space observer (instance.last_accesses is per-run). *)
  let measure cfg ~mode ~max_runs =
    let i = M.instance cfg in
    let total = ref 0 in
    let make p =
      total := !total + i.M.last_accesses ();
      i.M.make p
    in
    let r =
      Fun.protect ~finally:i.M.teardown (fun () ->
          match mode with
          | `Dpor ->
              E.dpor ~make ~check:i.M.check ~max_steps ~max_runs
                ~max_preempts:0 ~note:(M.note cfg) ()
          | `Naive ->
              E.exhaustive ~make ~check:i.M.check ~max_steps ~max_runs
                ~note:(M.note cfg) ())
    in
    total := !total + i.M.last_accesses ();
    (r, !total)
  in
  let configs =
    [
      ("sticky n=4 f=1", M.default, 10_000);
      ( "verifiable n=4 f=1",
        { M.default with M.model = M.Verifiable; reads = 2 },
        30_000 );
      ("test-or-set n=4 f=1", { M.default with M.model = M.Testorset }, 10_000);
    ]
  in
  let rows =
    List.map
      (fun (label, cfg, naive_budget) ->
        let nv, nv_acc = measure cfg ~mode:`Naive ~max_runs:naive_budget in
        let dp, dp_acc = measure cfg ~mode:`Dpor ~max_runs:naive_budget in
        let nv_scheds = nv.E.runs + nv.E.pruned in
        let dp_scheds = dp.E.runs + dp.E.pruned + dp.E.blocked in
        (label, nv, nv_scheds, nv_acc, dp, dp_scheds, dp_acc))
      configs
  in
  pf "%-20s | %9s %5s | %9s %5s %7s | %7s\n" "config" "dfs runs" "exh"
    "dpor run" "exh" "races" "reduct";
  List.iter
    (fun (label, nv, nv_scheds, _, dp, dp_scheds, _) ->
      pf "%-20s | %9d %5b | %9d %5b %7d | >=%4.0fx\n" label nv_scheds
        nv.E.exhausted dp_scheds dp.E.exhausted dp.E.races
        (float_of_int nv_scheds /. float_of_int dp_scheds))
    rows;
  let oc = open_out "BENCH_T15.json" in
  let j = Printf.fprintf in
  j oc "{\n  \"table\": \"T15\",\n  \"max_steps\": %d,\n  \"configs\": [\n"
    max_steps;
  List.iteri
    (fun i (label, nv, nv_scheds, nv_acc, dp, dp_scheds, dp_acc) ->
      j oc
        "    {\"config\": %S,\n\
        \     \"naive\": {\"schedules\": %d, \"runs\": %d, \"exhausted\": %b, \
         \"accesses\": %d},\n\
        \     \"dpor\": {\"schedules\": %d, \"runs\": %d, \"blocked\": %d, \
         \"races\": %d, \"exhausted\": %b, \"accesses\": %d, \
         \"max_depth\": %d},\n\
        \     \"reduction_at_least\": %.1f}%s\n"
        label nv_scheds nv.E.runs nv.E.exhausted nv_acc dp_scheds dp.E.runs
        dp.E.blocked dp.E.races dp.E.exhausted dp_acc dp.E.max_depth
        (float_of_int nv_scheds /. float_of_int dp_scheds)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  j oc "  ]\n}\n";
  close_out oc;
  pf "(machine-readable copy written to BENCH_T15.json)\n"

let table_t16 () =
  header
    "T16 Parallel backend (lib/runtime Domains + lib/parallel): the pure\n\
    \    protocol cores driven on OCaml 5 domains — one domain per process,\n\
    \    mutex-protected registers, real preemption — measured end to end\n\
    \    in operations per wall-clock second. Every run's history is\n\
    \    re-checked by the spec-level acceptance used by the differential\n\
    \    conformance suite; a rejected run fails the bench. All workloads\n\
    \    are n = 4 (4 domains), so CI numbers are comparable across hosts";
  let module Diff = Lnd_parallel.Diff in
  let module Parallel = Lnd_parallel.Parallel in
  (* Fixed 4-domain workloads (the seed only names the row: every field
     the backends read is pinned explicitly). *)
  let base proto =
    {
      Diff.seed = 0;
      proto;
      n = 4;
      f = 1;
      tos_verifiable = false;
      scripts = [];
      script_value = "a";
      writes = 2;
      programs = [];
    }
  in
  let r2 = [ (1, [ Diff.I_read; Diff.I_read ]); (2, [ Diff.I_read ]) ] in
  let t2 = [ (1, [ Diff.I_test; Diff.I_test ]); (2, [ Diff.I_test ]) ] in
  let configs =
    [
      ( "sticky n=4 honest",
        { (base Diff.Sticky) with Diff.programs = r2 @ [ (3, [ Diff.I_read ]) ] }
      );
      ( "sticky n=4 byz",
        {
          (base Diff.Sticky) with
          Diff.scripts = [ (3, [ 1; 2; 0; 4 ]) ];
          programs = r2;
        } );
      ( "verifiable n=4 honest",
        {
          (base Diff.Verifiable) with
          Diff.programs =
            [
              (1, [ Diff.I_read; Diff.I_verify "a" ]);
              (2, [ Diff.I_verify "b" ]);
              (3, [ Diff.I_verify "a" ]);
            ];
        } );
      ( "test-or-set n=4 sticky",
        { (base Diff.Testorset) with Diff.programs = t2 @ [ (3, [ Diff.I_test ]) ] }
      );
      ( "test-or-set n=4 verif",
        {
          (base Diff.Testorset) with
          Diff.tos_verifiable = true;
          programs = t2 @ [ (3, [ Diff.I_test ]) ];
        } );
    ]
  in
  let iters = 25 in
  let measure w =
    (* one warm-up run, then [iters] timed runs *)
    let warm = Parallel.run w in
    (match warm.Diff.verdict with
    | Ok () -> ()
    | Error m -> failwith ("T16: domains run rejected: " ^ m));
    let ops = ref 0 and steps = ref 0 in
    let t0 =
      (Unix.gettimeofday ()
      [@lnd.allow
        "determinism: T16 measures the domains backend's real wall-clock \
         throughput; nothing deterministic depends on this value"])
    in
    for _ = 1 to iters do
      let r = Parallel.run w in
      (match r.Diff.verdict with
      | Ok () -> ()
      | Error m -> failwith ("T16: domains run rejected: " ^ m));
      ops := !ops + r.Diff.ops;
      steps := !steps + r.Diff.steps
    done;
    let dt =
      (Unix.gettimeofday ()
      [@lnd.allow
        "determinism: T16 measures the domains backend's real wall-clock \
         throughput; nothing deterministic depends on this value"])
      -. t0
    in
    (!ops, !steps, dt)
  in
  let rows =
    List.map
      (fun (label, w) ->
        let ops, steps, dt = measure w in
        (label, ops, steps, dt, float_of_int ops /. dt))
      configs
  in
  pf "%-25s | %6s %10s | %9s | %12s\n" "workload (x25 runs)" "ops" "steps"
    "seconds" "ops/sec";
  List.iter
    (fun (label, ops, steps, dt, rate) ->
      pf "%-25s | %6d %10d | %9.3f | %12.0f\n" label ops steps dt rate)
    rows;
  let oc = open_out "BENCH_T16.json" in
  let j = Printf.fprintf in
  j oc
    "{\n\
    \  \"table\": \"T16\",\n\
    \  \"backend\": \"domains\",\n\
    \  \"domains_per_run\": 4,\n\
    \  \"iterations\": %d,\n\
    \  \"configs\": [\n"
    iters;
  List.iteri
    (fun i (label, ops, steps, dt, rate) ->
      j oc
        "    {\"config\": %S, \"ops\": %d, \"machine_steps\": %d, \
         \"seconds\": %.4f, \"ops_per_sec\": %.1f}%s\n"
        label ops steps dt rate
        (if i = List.length rows - 1 then "" else ","))
    rows;
  j oc "  ]\n}\n";
  close_out oc;
  pf "(machine-readable copy written to BENCH_T16.json)\n"

(* ------------------------------------------------------------------ *)
(* T17: observability allocation — the record hot path                 *)
(* ------------------------------------------------------------------ *)

let table_t17 () =
  header
    "T17 Observability allocation (lib/obs): heap words allocated per\n\
    \    event on the trace-recording hot path. 'list sink' is the\n\
    \    pre-arena implementation (one cons cell per event); 'arena' is\n\
    \    the preallocated per-domain buffer Trace records into now. The\n\
    \    end-to-end rows include Obs.emit's event construction, which\n\
    \    both sinks pay alike — the record step itself must be zero";
  let module Obs = Lnd_obs.Obs in
  let module Trace = Lnd_obs.Trace in
  let n = 200_000 in
  let value = Univ.inj Codecs.counter 0 in
  let ev : Obs.event =
    {
      Obs.at = 0;
      pid = 0;
      span = 1;
      kind = Obs.Shm_access { access = `Read; reg = "R"; value };
    }
  in
  (* Heap words allocated per call of [f], measured over [n] calls. *)
  let words_per_call f =
    Gc.full_major ();
    let a0 = Gc.allocated_bytes () in
    for _ = 1 to n do
      f ()
    done;
    let a1 = Gc.allocated_bytes () in
    (a1 -. a0) /. float_of_int n /. float_of_int (Sys.word_size / 8)
  in
  let with_list_sink use =
    let events = ref [] in
    let sink = { Obs.emit = (fun e -> events := e :: !events) } in
    let r = use sink in
    ignore (Sys.opaque_identity !events);
    r
  in
  let with_arena_sink use =
    let tr = Trace.create ~capacity:(n + 8) () in
    let sink = Trace.sink tr in
    sink.Obs.emit ev;
    (* warm-up: first record allocates the arena lazily *)
    use sink
  in
  let rows =
    [
      ( "record: list sink (before)",
        with_list_sink (fun s -> words_per_call (fun () -> s.Obs.emit ev)) );
      ( "record: arena (after)",
        with_arena_sink (fun s -> words_per_call (fun () -> s.Obs.emit ev)) );
      ( "emit+record: list sink",
        with_list_sink (fun s ->
            Obs.install s;
            let w =
              words_per_call (fun () ->
                  Obs.emit (Obs.Shm_access { access = `Read; reg = "R"; value }))
            in
            Obs.uninstall ();
            w) );
      ( "emit+record: arena",
        with_arena_sink (fun s ->
            Obs.install s;
            let w =
              words_per_call (fun () ->
                  Obs.emit (Obs.Shm_access { access = `Read; reg = "R"; value }))
            in
            Obs.uninstall ();
            w) );
    ]
  in
  pf "%-28s | %16s\n" "path (x200k events)" "words/event";
  List.iter (fun (label, w) -> pf "%-28s | %16.2f\n" label w) rows;
  let oc = open_out "BENCH_T17.json" in
  let j = Printf.fprintf in
  j oc "{\n  \"table\": \"T17\",\n  \"events\": %d,\n  \"rows\": [\n" n;
  List.iteri
    (fun i (label, w) ->
      j oc "    {\"path\": %S, \"words_per_event\": %.2f}%s\n" label w
        (if i = List.length rows - 1 then "" else ","))
    rows;
  j oc "  ]\n}\n";
  close_out oc;
  pf "(machine-readable copy written to BENCH_T17.json)\n"

(* ------------------------------------------------------------------ *)
(* The regression gate: `bench check`                                  *)
(* ------------------------------------------------------------------ *)

(* Per-table tolerance rules, documented in the report and in
   EXPERIMENTS.md:
   - T12, T13: every field exact (0%) — WAL cadences and chaos traces
     replay deterministically in the simulator.
   - T16: "ops" and structure exact (the workloads are pinned), but
     machine_steps / seconds / ops_per_sec are wall-clock artifacts of
     real preemption — ignored.
   - T17: the arena record-path row must stay EXACTLY 0.00 words/event
     (the acceptance invariant); the other rows are context — their
     absolute counts jitter with GC accounting — and are not gated. *)
let check_rules table path =
  match table with
  | "T16" ->
      let suffix s =
        let ls = String.length s and lp = String.length path in
        lp >= ls && String.sub path (lp - ls) ls = s
      in
      if suffix ".machine_steps" || suffix ".seconds" || suffix ".ops_per_sec"
      then Baseline.Ignore
      else Baseline.Exact
  | "T17" ->
      if path = "rows[1].words_per_event" (* record: arena (after) *) then
        Baseline.Exact
      else if Filename.check_suffix path ".words_per_event" then
        Baseline.Ignore
      else Baseline.Exact
  | _ -> Baseline.Exact

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_tables () =
  let specs =
    [
      ("T12", "BENCH_T12.json", table_t12);
      ("T13", "BENCH_T13.json", table_t13);
      ("T16", "BENCH_T16.json", table_t16);
      ("T17", "BENCH_T17.json", table_t17);
    ]
  in
  (* Snapshot the committed baselines first: regenerating overwrites the
     files in place. *)
  let baselines =
    List.map
      (fun (table, file, regen) ->
        let committed =
          try Some (read_file file) with Sys_error _ -> None
        in
        (table, file, regen, committed))
      specs
  in
  let report = Buffer.create 1024 in
  let bpf fmt = Printf.ksprintf (fun s -> Buffer.add_string report s) fmt in
  bpf "bench regression gate: fresh tables vs committed BENCH_*.json\n";
  bpf
    "tolerances: T12/T13 exact; T16 ops exact, wall-clock fields ignored; \
     T17 arena record path exactly 0.00 words/event, other rows \
     informational\n\n";
  let failures = ref 0 in
  List.iter
    (fun (table, file, regen, committed) ->
      match committed with
      | None ->
          incr failures;
          bpf "%s: FAIL — no committed baseline %s\n" table file
      | Some committed -> (
          regen ();
          let fresh = read_file file in
          match (Baseline.parse committed, Baseline.parse fresh) with
          | Error m, _ ->
              incr failures;
              bpf "%s: FAIL — committed %s unparseable: %s\n" table file m
          | _, Error m ->
              incr failures;
              bpf "%s: FAIL — regenerated %s unparseable: %s\n" table file m
          | Ok b, Ok f -> (
              match Baseline.compare_flat ~rules:(check_rules table) b f with
              | [] -> bpf "%s: ok (within tolerance)\n" table
              | ms ->
                  incr failures;
                  bpf "%s: FAIL — %d field(s) out of tolerance:\n" table
                    (List.length ms);
                  List.iter (fun m -> bpf "  %s\n" m) ms)))
    baselines;
  let oc = open_out "bench-check-report.txt" in
  output_string oc (Buffer.contents report);
  close_out oc;
  print_string (Buffer.contents report);
  pf "(report written to bench-check-report.txt)\n";
  if !failures > 0 then exit 1

(* ------------------------------------------------------------------ *)
(* Bechamel wall-clock micro-benchmarks                                *)
(* ------------------------------------------------------------------ *)

let bench_wallclock () =
  header "Wall-clock micro-benchmarks (bechamel, monotonic clock)";
  let open Bechamel in
  let open Toolkit in
  let scenario_verify n f () =
    let module Sys = Lnd_verifiable.System in
    let t = Sys.make ~policy:(Policy.random ~seed:42) ~n ~f () in
    ignore
      (Sys.client t ~pid:0 ~name:"w" (fun () ->
           Sys.op_write t "v";
           ignore (Sys.op_sign t "v")));
    ignore
      (Sys.client t ~pid:1 ~name:"v" (fun () ->
           ignore (Sys.op_verify t ~pid:1 "v")));
    run_q t.sched
  in
  let scenario_sticky n f () =
    let module Sys = Lnd_sticky.System in
    let t = Sys.make ~policy:(Policy.random ~seed:42) ~n ~f () in
    ignore (Sys.client t ~pid:0 ~name:"w" (fun () -> Sys.op_write t "v"));
    ignore
      (Sys.client t ~pid:1 ~name:"r" (fun () ->
           ignore (Sys.op_read t ~pid:1)));
    run_q t.sched
  in
  let scenario_sigbase n f () =
    let module Sv = Lnd_sigbase.Sig_verifiable in
    let space = Space.create ~n in
    let sched = Sched.create ~space ~choose:(Policy.random ~seed:42) in
    let oracle = Lnd_crypto.Sigoracle.create () in
    let regs = Sv.alloc space { Sv.n; f } ~oracle in
    let writer = Sv.writer regs in
    ignore
      (Sched.spawn sched ~pid:0 ~name:"w" (fun () ->
           Sv.write writer "v";
           ignore (Sv.sign writer "v")));
    ignore
      (Sched.spawn sched ~pid:1 ~name:"v" (fun () ->
           ignore (Sv.verify (Sv.reader regs ~pid:1) "v")));
    run_q sched
  in
  let scenario_testorset () =
    let module Tos = Lnd_testorset.Testorset in
    let t =
      Tos.make ~policy:(Policy.random ~seed:42) ~impl:Tos.Sticky_based ~n:4
        ~f:1 ()
    in
    ignore (Tos.client t ~pid:0 ~name:"s" (fun () -> Tos.op_set t));
    ignore
      (Tos.client t ~pid:1 ~name:"t" (fun () -> ignore (Tos.op_test t ~pid:1)));
    run_q t.sched
  in
  let tests =
    Test.make_grouped ~name:"lie_not_deny" ~fmt:"%s %s"
      [
        Test.make ~name:"verifiable write+sign+verify n=4"
          (Staged.stage (scenario_verify 4 1));
        Test.make ~name:"verifiable write+sign+verify n=7"
          (Staged.stage (scenario_verify 7 2));
        Test.make ~name:"verifiable write+sign+verify n=10"
          (Staged.stage (scenario_verify 10 3));
        Test.make ~name:"sticky write+read n=4"
          (Staged.stage (scenario_sticky 4 1));
        Test.make ~name:"sticky write+read n=7"
          (Staged.stage (scenario_sticky 7 2));
        Test.make ~name:"sticky write+read n=10"
          (Staged.stage (scenario_sticky 10 3));
        Test.make ~name:"sig-baseline write+sign+verify n=4"
          (Staged.stage (scenario_sigbase 4 1));
        Test.make ~name:"sig-baseline write+sign+verify n=10"
          (Staged.stage (scenario_sigbase 10 3));
        Test.make ~name:"test-or-set set+test n=4"
          (Staged.stage scenario_testorset);
      ]
  in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  pf "%-55s | %14s | %6s\n" "scenario" "time/run" "r²";
  List.iter
    (fun (name, r) ->
      let est =
        match Analyze.OLS.estimates r with
        | Some (e :: _) -> e
        | _ -> nan
      in
      let r2 = match Analyze.OLS.r_square r with Some x -> x | None -> nan in
      let time =
        if est > 1e6 then Printf.sprintf "%.3f ms" (est /. 1e6)
        else Printf.sprintf "%.1f µs" (est /. 1e3)
      in
      pf "%-55s | %14s | %6.4f\n" name time r2)
    rows

let () =
  (* [bench/main.exe t12] regenerates just the durability table (and its
     BENCH_T12.json) without paying for the wall-clock suite. *)
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "t12" then begin
    table_t12 ();
    exit 0
  end;
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "t13" then begin
    table_t13 ();
    exit 0
  end;
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "t14" then begin
    table_t14 ();
    exit 0
  end;
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "t15" then begin
    table_t15 ();
    exit 0
  end;
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "t16" then begin
    table_t16 ();
    exit 0
  end;
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "t17" then begin
    table_t17 ();
    exit 0
  end;
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "check" then begin
    check_tables ();
    exit 0
  end;
  pf
    "lie_not_deny benchmark harness — experiment tables for the PODC'25 \
     paper\n\
     \"You can lie but not deny\" (Hu & Toueg). See EXPERIMENTS.md.\n";
  table_t1 ();
  table_t2 ();
  table_t2b ();
  table_t3 ();
  table_t3b ();
  table_t4 ();
  table_t5 ();
  table_t6 ();
  table_t7 ();
  table_t8 ();
  table_t9 ();
  table_t10 ();
  table_t11 ();
  table_t12 ();
  table_t13 ();
  table_t14 ();
  table_t15 ();
  table_t16 ();
  table_t17 ();
  bench_wallclock ();
  pf "\nAll tables regenerated.\n"
