(* Baseline comparison for the bench regression gate (`bench check`).

   A committed BENCH_T*.json is parsed into a tiny JSON tree, flattened
   into leaf paths ("chaos[1].steps", "configs[0].ops"), and diffed
   against a freshly regenerated file under a per-path rule supplied by
   the caller: Exact (byte-level value equality — the right rule for
   everything the deterministic simulator produces), Pct tol (relative
   tolerance for numbers), or Ignore (wall-clock fields). Structural
   drift — a path present on one side only — always fails: a table that
   silently loses a row is a regression too. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

(* --- minimal recursive-descent parser (ASCII JSON, as our writers emit) *)

type st = { s : string; mutable i : int }

let peek st = if st.i < String.length st.s then Some st.s.[st.i] else None

let skip_ws st =
  while
    st.i < String.length st.s
    && match st.s.[st.i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.i <- st.i + 1
  done

let expect st c =
  if peek st = Some c then st.i <- st.i + 1
  else raise (Bad (Printf.sprintf "expected %c at offset %d" c st.i))

let lit st word v =
  if
    st.i + String.length word <= String.length st.s
    && String.sub st.s st.i (String.length word) = word
  then (
    st.i <- st.i + String.length word;
    v)
  else raise (Bad (Printf.sprintf "bad literal at offset %d" st.i))

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> raise (Bad "unterminated string")
    | Some '"' -> st.i <- st.i + 1
    | Some '\\' -> (
        st.i <- st.i + 1;
        match peek st with
        | Some 'n' -> Buffer.add_char b '\n'; st.i <- st.i + 1; go ()
        | Some 't' -> Buffer.add_char b '\t'; st.i <- st.i + 1; go ()
        | Some 'r' -> Buffer.add_char b '\r'; st.i <- st.i + 1; go ()
        | Some 'u' ->
            (* keep escapes opaque: baselines never need the code point *)
            Buffer.add_string b (String.sub st.s st.i 5);
            st.i <- st.i + 5;
            go ()
        | Some c -> Buffer.add_char b c; st.i <- st.i + 1; go ()
        | None -> raise (Bad "unterminated escape"))
    | Some c ->
        Buffer.add_char b c;
        st.i <- st.i + 1;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number st =
  let start = st.i in
  let numch c =
    match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while (match peek st with Some c -> numch c | None -> false) do
    st.i <- st.i + 1
  done;
  match float_of_string_opt (String.sub st.s start (st.i - start)) with
  | Some f -> f
  | None -> raise (Bad (Printf.sprintf "bad number at offset %d" start))

let rec parse_value st =
  skip_ws st;
  match peek st with
  | Some '{' ->
      st.i <- st.i + 1;
      skip_ws st;
      if peek st = Some '}' then (
        st.i <- st.i + 1;
        Obj [])
      else
        let rec members acc =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.i <- st.i + 1;
              members ((k, v) :: acc)
          | Some '}' ->
              st.i <- st.i + 1;
              List.rev ((k, v) :: acc)
          | _ -> raise (Bad (Printf.sprintf "bad object at offset %d" st.i))
        in
        Obj (members [])
  | Some '[' ->
      st.i <- st.i + 1;
      skip_ws st;
      if peek st = Some ']' then (
        st.i <- st.i + 1;
        Arr [])
      else
        let rec items acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.i <- st.i + 1;
              items (v :: acc)
          | Some ']' ->
              st.i <- st.i + 1;
              List.rev (v :: acc)
          | _ -> raise (Bad (Printf.sprintf "bad array at offset %d" st.i))
        in
        Arr (items [])
  | Some '"' -> Str (parse_string st)
  | Some 't' -> lit st "true" (Bool true)
  | Some 'f' -> lit st "false" (Bool false)
  | Some 'n' -> lit st "null" Null
  | Some _ -> Num (parse_number st)
  | None -> raise (Bad "empty input")

let parse (s : string) : (json, string) result =
  let st = { s; i = 0 } in
  try
    let v = parse_value st in
    skip_ws st;
    if st.i <> String.length s then Error "trailing garbage"
    else Ok v
  with Bad m -> Error m

(* --- flatten + compare ------------------------------------------------ *)

let flatten (j : json) : (string * json) list =
  let acc = ref [] in
  let rec go path = function
    | Obj kvs ->
        List.iter
          (fun (k, v) ->
            go (if path = "" then k else path ^ "." ^ k) v)
          kvs
    | Arr vs ->
        List.iteri (fun i v -> go (Printf.sprintf "%s[%d]" path i) v) vs
    | leaf -> acc := (path, leaf) :: !acc
  in
  go "" j;
  List.rev !acc

type rule = Exact | Pct of float | Ignore

let rule_name = function
  | Exact -> "exact"
  | Pct p -> Printf.sprintf "±%g%%" p
  | Ignore -> "ignored"

let leaf_str = function
  | Null -> "null"
  | Bool b -> string_of_bool b
  | Num f -> Printf.sprintf "%g" f
  | Str s -> Printf.sprintf "%S" s
  | Arr _ | Obj _ -> "<node>"

let leaf_ok rule a b =
  match rule with
  | Ignore -> true
  | Exact -> a = b
  | Pct tol -> (
      match (a, b) with
      | Num x, Num y ->
          let scale = Float.max (Float.abs x) 1e-9 in
          Float.abs (x -. y) <= tol /. 100. *. scale
      | _ -> a = b)

(* One mismatch line per failing path; [] = within tolerance. *)
let compare_flat ~(rules : string -> rule) (baseline : json) (fresh : json) :
    string list =
  let b = flatten baseline and f = flatten fresh in
  let ftbl = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace ftbl k v) f;
  let out = ref [] in
  List.iter
    (fun (k, bv) ->
      let rule = rules k in
      match Hashtbl.find_opt ftbl k with
      | None ->
          if rule <> Ignore then
            out := Printf.sprintf "%s: missing from fresh run (was %s)" k
                     (leaf_str bv) :: !out
      | Some fv ->
          Hashtbl.remove ftbl k;
          if not (leaf_ok rule bv fv) then
            out :=
              Printf.sprintf "%s: baseline %s, fresh %s (rule: %s)" k
                (leaf_str bv) (leaf_str fv) (rule_name rule)
              :: !out)
    b;
  (* paths only the fresh run has *)
  List.iter
    (fun (k, fv) ->
      if Hashtbl.mem ftbl k && rules k <> Ignore then
        out := Printf.sprintf "%s: new in fresh run (%s)" k (leaf_str fv) :: !out)
    f;
  List.rev !out
