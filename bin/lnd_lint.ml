(* lnd_lint — the protocol-aware static-analysis pass.

   Usage: lnd_lint [--json] [--rules] [PATH ...]

   PATHs (files or directories; default: lib bin bench test) are scanned
   for .ml files, each is parsed and run through every rule in
   Lnd_lint_core.Rules, and the findings are reported one per line
   (file:line:col: [rule] message) or as a JSON array with --json.

   Exit status: 0 = clean, 1 = findings, 2 = usage or I/O error. CI runs
   this as a blocking job, so a finding is a build failure; suppress a
   deliberate violation inline with [@lnd.allow "rule: justification"]
   (the justification is mandatory — bare rule names are themselves a
   finding). *)

open Lnd_lint_core

let default_paths = [ "lib"; "bin"; "bench"; "test" ]

let usage () =
  prerr_endline "usage: lnd_lint [--json] [--rules] [PATH ...]";
  prerr_endline "  default PATHs: lib bin bench test";
  exit 2

let print_rules () =
  List.iter
    (fun (name, desc) -> Printf.printf "%-22s %s\n" name desc)
    Rules.catalogue;
  exit 0

let () =
  let json = ref false and paths = ref [] in
  Array.iteri
    (fun i arg ->
      if i > 0 then
        match arg with
        | "--json" -> json := true
        | "--rules" -> print_rules ()
        | "--help" | "-h" -> usage ()
        | p when String.length p > 0 && p.[0] = '-' -> usage ()
        | p -> paths := p :: !paths)
    Sys.argv;
  let paths = match List.rev !paths with [] -> default_paths | ps -> ps in
  match Driver.lint_paths paths with
  | Error msg ->
      Printf.eprintf "lnd_lint: %s\n" msg;
      exit 2
  | Ok findings ->
      Findings.report ~json:!json Format.std_formatter findings;
      exit (if findings = [] then 0 else 1)
