(* lnd_lint — the protocol-aware static-analysis pass (parsetree level).

   Usage: lnd_lint [--json] [--sarif FILE] [--rules] [PATH ...]

   PATHs (files or directories; default: lib bin bench test) are scanned
   for .ml files, each is parsed and run through every rule in
   Lnd_lint_core.Rules, and the findings are reported one per line
   (file:line:col: [rule] message), as a JSON array with --json, and as
   a SARIF 2.1.0 log with --sarif FILE. The typedtree-level companion is
   bin/lnd_sem.ml; both share this CLI surface (Lnd_lint_core.Cli).

   Exit status: 0 = clean, 1 = findings, 2 = usage or I/O error. CI runs
   this as a blocking job, so a finding is a build failure; suppress a
   deliberate violation inline with [@lnd.allow "rule: justification"]
   (the justification is mandatory — bare rule names are themselves a
   finding). *)

open Lnd_lint_core

let tool = "lnd_lint"
let catalogue = Rules.catalogue

let () =
  let opts =
    Cli.parse ~tool ~accept_build:false
      ~default_paths:[ "lib"; "bin"; "bench"; "test" ]
      ~catalogue Sys.argv
  in
  match Driver.lint_paths opts.Cli.paths with
  | Error msg ->
      Printf.eprintf "%s: %s\n" tool msg;
      exit 2
  | Ok findings -> Cli.finish ~tool ~catalogue opts findings
