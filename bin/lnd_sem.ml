(* lnd_sem — the typedtree-level effect & ordering verifier.

   Usage: lnd_sem [--json] [--sarif FILE] [--build DIR] [--rules] [PATH ...]

   Where lnd_lint pattern-matches the parsetree per file, lnd_sem reads
   the .cmt files a `dune build @check` leaves behind and checks
   resolved-name, flow-sensitive properties: sync-before-speak
   (sem-ordering), sign-before-send / verify-before-trust
   (sem-sign / sem-verify), and [@lnd.pure] effect-freedom (sem-pure).

   PATHs are workspace-relative source prefixes (default: lib); --build
   names the dune build root holding the cmts (default: _build/default).
   Same CLI contract as lnd_lint: findings one per line or --json,
   --sarif writes a SARIF 2.1.0 log, exit 0 = clean, 1 = findings,
   2 = usage or I/O error. CI runs this blocking; suppress a deliberate
   violation with [@lnd.allow "rule: justification"]. *)

open Lnd_lint_core

let tool = "lnd_sem"
let catalogue = Rules.sem_catalogue

let () =
  let opts =
    Cli.parse ~tool ~accept_build:true ~default_paths:[ "lib" ] ~catalogue
      Sys.argv
  in
  match Lnd_sem_core.Semdriver.analyze_paths ~build:opts.Cli.build opts.Cli.paths with
  | Error msg ->
      Printf.eprintf "%s: %s\n" tool msg;
      exit 2
  | Ok findings -> Cli.finish ~tool ~catalogue opts findings
