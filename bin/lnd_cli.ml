(* lnd — command-line driver for the lie_not_deny simulator.

   Subcommands:
     verify        run a verifiable-register scenario (optionally adversarial)
     sticky        run a sticky-register scenario (optionally adversarial)
     impossibility run the Theorem 23 / Figures 1-3 attack at a given (n, f)
     sweep         print operation-cost rows across n (like bench table T1/T3)
     fuzz          random Byzantine scenarios, replayable by seed
     chaos         message-passing protocols over faulty links (Faultnet +
                   retransmission), replayable by seed
     trace         replay a chaos seed with the observability sink and
                   export a deterministic JSONL / Chrome trace + metrics

   Examples:
     lnd_cli verify -n 7 -f 2 --adversary deny --seed 3
     lnd_cli sticky -n 4 -f 1 --adversary equivocate
     lnd_cli impossibility -f 2
     lnd_cli sweep --register sticky
     lnd_cli chaos --count 50
     lnd_cli chaos --seed 17
     lnd_cli trace --seed 17 --chrome /tmp/t.json --metrics *)

open Lnd
open Cmdliner

let pr fmt = Printf.printf fmt

(* ---------------- common args ---------------- *)

let n_arg =
  Arg.(value & opt int 4 & info [ "n" ] ~docv:"N" ~doc:"Number of processes.")

let f_arg =
  Arg.(
    value & opt int 1
    & info [ "f" ] ~docv:"F" ~doc:"Number of tolerated Byzantine processes.")

let seed_arg =
  Arg.(
    value & opt int 42
    & info [ "seed" ] ~docv:"SEED" ~doc:"Scheduler randomness seed.")

let steps_arg =
  Arg.(
    value & opt int 8_000_000
    & info [ "max-steps" ] ~docv:"STEPS" ~doc:"Scheduler step budget.")

let trace_arg =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:"Print the last 40 register accesses after the run.")

let maybe_enable_trace space trace =
  if trace then Space.set_trace space ~capacity:40

let maybe_print_trace space trace =
  if trace then begin
    pr "\nlast register accesses:\n";
    List.iter
      (fun a -> pr "  %s\n" (Format.asprintf "%a" Space.pp_access a))
      (Space.trace space)
  end

let run_to_quiescence sched ~max_steps =
  match Sched.run ~max_steps sched with
  | Sched.Quiescent -> ()
  | Sched.Budget_exhausted ->
      pr "!! step budget exhausted\n";
      exit 2
  | Sched.Condition_met -> ()

(* ---------------- verify ---------------- *)

let verify_adversaries = [ "none"; "deny"; "flipflop"; "naysay"; "garbage" ]

let verify_cmd_run n f seed max_steps adversary trace =
  if adversary = "none" && n <= 3 * f then
    pr "warning: n <= 3f — outside Algorithm 1's requirement\n";
  let byzantine =
    match adversary with
    | "deny" -> [ 0 ]
    | "flipflop" | "naysay" | "garbage" -> List.init f (fun i -> n - 1 - i)
    | _ -> []
  in
  let sys =
    Verifiable_system.make ~policy:(Policy.random ~seed) ~n ~f ~byzantine ()
  in
  maybe_enable_trace sys.space trace;
  (match adversary with
  | "deny" ->
      ignore
        (Byz_verifiable.spawn_denying_writer sys.sched sys.regs ~v:"the-lie"
           ~deny_after:2 ())
  | "flipflop" ->
      List.iter
        (fun pid ->
          ignore
            (Byz_verifiable.spawn_flipflop sys.sched sys.regs ~pid ~v:"the-lie"))
        byzantine
  | "naysay" ->
      List.iter
        (fun pid ->
          ignore (Byz_verifiable.spawn_naysayer sys.sched sys.regs ~pid))
        byzantine
  | "garbage" ->
      List.iter
        (fun pid ->
          ignore (Byz_verifiable.spawn_garbage sys.sched sys.regs ~pid))
        byzantine
  | _ -> ());
  if adversary <> "deny" then
    ignore
      (Verifiable_system.client sys ~pid:0 ~name:"writer" (fun () ->
           Verifiable_system.op_write sys "the-lie";
           let ok = Verifiable_system.op_sign sys "the-lie" in
           pr "p0: WRITE+SIGN \"the-lie\" -> %s\n"
             (if ok then "SUCCESS" else "FAIL")));
  for pid = 1 to n - 1 do
    if not (List.mem pid byzantine) then
      ignore
        (Verifiable_system.client sys ~pid
           ~name:(Printf.sprintf "verifier%d" pid)
           (fun () ->
             let r = Verifiable_system.op_verify sys ~pid "the-lie" in
             pr "p%d: VERIFY(\"the-lie\") -> %b\n" pid r))
  done;
  run_to_quiescence sys.sched ~max_steps;
  pr "steps: %d, register accesses: %s\n" (Sched.steps sys.sched)
    (Format.asprintf "%a" Space.pp_stats (Space.stats sys.space));
  pr "Byzantine linearizable: %b\n" (Verifiable_system.byz_linearizable sys);
  maybe_print_trace sys.space trace

let verify_cmd =
  let adversary =
    Arg.(
      value
      & opt (enum (List.map (fun a -> (a, a)) verify_adversaries)) "none"
      & info [ "adversary" ] ~docv:"ADV"
          ~doc:
            "Adversary: none, deny (Byzantine writer lies then denies), \
             flipflop, naysay, garbage.")
  in
  Cmd.v
    (Cmd.info "verify" ~doc:"Run a verifiable-register scenario (Algorithm 1)")
    Term.(
      const verify_cmd_run $ n_arg $ f_arg $ seed_arg $ steps_arg $ adversary
      $ trace_arg)

(* ---------------- sticky ---------------- *)

let sticky_adversaries = [ "none"; "equivocate"; "deny"; "garbage" ]

let sticky_cmd_run n f seed max_steps adversary =
  let byzantine =
    match adversary with
    | "equivocate" | "deny" -> [ 0 ]
    | "garbage" -> List.init f (fun i -> n - 1 - i)
    | _ -> []
  in
  let sys =
    Sticky_system.make ~policy:(Policy.random ~seed) ~n ~f ~byzantine ()
  in
  (match adversary with
  | "equivocate" ->
      ignore
        (Byz_sticky.spawn_equivocating_writer sys.sched sys.regs ~va:"attack"
           ~vb:"retreat" ~flip_after:2 ())
  | "deny" ->
      ignore
        (Byz_sticky.spawn_denying_writer sys.sched sys.regs ~v:"kept"
           ~deny_after:3 ())
  | "garbage" ->
      List.iter
        (fun pid -> ignore (Byz_sticky.spawn_garbage sys.sched sys.regs ~pid))
        byzantine
  | _ -> ());
  if byzantine = [] || adversary = "garbage" then
    ignore
      (Sticky_system.client sys ~pid:0 ~name:"writer" (fun () ->
           Sticky_system.op_write sys "first-value";
           pr "p0: WRITE \"first-value\" done\n"));
  for pid = 1 to n - 1 do
    if not (List.mem pid byzantine) then
      ignore
        (Sticky_system.client sys ~pid
           ~name:(Printf.sprintf "reader%d" pid)
           (fun () ->
             let r = Sticky_system.op_read sys ~pid in
             pr "p%d: READ -> %s\n" pid
               (match r with Some v -> Printf.sprintf "%S" v | None -> "⊥")))
  done;
  run_to_quiescence sys.sched ~max_steps;
  pr "steps: %d, register accesses: %s\n" (Sched.steps sys.sched)
    (Format.asprintf "%a" Space.pp_stats (Space.stats sys.space));
  pr "Byzantine linearizable: %b\n" (Sticky_system.byz_linearizable sys)

let sticky_cmd =
  let adversary =
    Arg.(
      value
      & opt (enum (List.map (fun a -> (a, a)) sticky_adversaries)) "none"
      & info [ "adversary" ] ~docv:"ADV"
          ~doc:"Adversary: none, equivocate, deny, garbage.")
  in
  Cmd.v
    (Cmd.info "sticky" ~doc:"Run a sticky-register scenario (Algorithm 2)")
    Term.(const sticky_cmd_run $ n_arg $ f_arg $ seed_arg $ steps_arg $ adversary)

(* ---------------- impossibility ---------------- *)

let impossibility_cmd_run f seed =
  pr "Theorem 23 / Figures 1-3 attack (register-reset + deny):\n\n";
  List.iter
    (fun n ->
      let o = Impossibility.run_attack ~seed ~n ~f () in
      pr "  %s\n" (Format.asprintf "%a" Impossibility.pp_outcome o))
    [ 3 * f; (3 * f) + 1 ]

let impossibility_cmd =
  Cmd.v
    (Cmd.info "impossibility"
       ~doc:"Run the Theorem 23 attack at n = 3f and n = 3f + 1")
    Term.(const impossibility_cmd_run $ f_arg $ seed_arg)

(* ---------------- fuzz ---------------- *)

let fuzz_cmd_run from count =
  let failures = ref 0 in
  for seed = from to from + count - 1 do
    let scenario = Lnd_fuzz.Fuzz.generate seed in
    match Lnd_fuzz.Fuzz.run scenario with
    | Ok r ->
        pr "ok   %s (%d ops, %d steps%s)\n"
          (Format.asprintf "%a" Lnd_fuzz.Fuzz.pp_scenario scenario)
          r.Lnd_fuzz.Fuzz.operations r.Lnd_fuzz.Fuzz.steps
          (if r.Lnd_fuzz.Fuzz.checked_linearizability then ", linearizability checked"
           else "")
    | Error msg ->
        incr failures;
        pr "FAIL %s: %s\n"
          (Format.asprintf "%a" Lnd_fuzz.Fuzz.pp_scenario scenario)
          msg
  done;
  pr "%d scenarios, %d failures\n" count !failures;
  if !failures > 0 then exit 1

let fuzz_cmd =
  let from =
    Arg.(value & opt int 0 & info [ "from" ] ~docv:"SEED" ~doc:"First seed.")
  in
  let count =
    Arg.(
      value & opt int 20
      & info [ "count" ] ~docv:"N" ~doc:"Number of scenarios to run.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Generate and check random Byzantine scenarios (replayable by \
          seed)")
    Term.(const fuzz_cmd_run $ from $ count)

(* ---------------- chaos ---------------- *)

let chaos_cmd_run from count seed_opt crash =
  let seeds =
    match seed_opt with
    | Some s -> [ s ]
    | None -> List.init count (fun i -> from + i)
  in
  let generate =
    if crash then Lnd_fuzz.Chaos.generate_crash else Lnd_fuzz.Chaos.generate
  in
  let failures = ref 0 in
  List.iter
    (fun seed ->
      let scenario = generate seed in
      match Lnd_fuzz.Chaos.run scenario with
      | Ok r ->
          pr "ok   %s\n     %s\n"
            (Format.asprintf "%a" Lnd_fuzz.Chaos.pp_scenario scenario)
            (Format.asprintf "%a" Lnd_fuzz.Chaos.pp_report r)
      | Error msg ->
          incr failures;
          pr "FAIL %s: %s\n"
            (Format.asprintf "%a" Lnd_fuzz.Chaos.pp_scenario scenario)
            msg)
    seeds;
  pr "%d scenarios, %d failures\n" (List.length seeds) !failures;
  if !failures > 0 then exit 1

let chaos_cmd =
  let from =
    Arg.(value & opt int 0 & info [ "from" ] ~docv:"SEED" ~doc:"First seed.")
  in
  let count =
    Arg.(
      value & opt int 20
      & info [ "count" ] ~docv:"N" ~doc:"Number of scenarios to run.")
  in
  let seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Replay exactly one scenario by its seed.")
  in
  let crash =
    Arg.(
      value & flag
      & info [ "crash" ]
          ~doc:
            "Generate crash-restart scenarios instead: correct replicas \
             crash mid-run (volatile state lost, disk torn at a seeded \
             point), recover from their write-ahead log, and rejoin via \
             state transfer — composed with the usual link faults and \
             Byzantine adversaries.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run the message-passing protocols over faulty links — seeded \
          drop/duplication/reorder/partition plans composed with Byzantine \
          adversaries, with retransmission recovering liveness (replayable \
          by seed)")
    Term.(const chaos_cmd_run $ from $ count $ seed $ crash)

(* ---------------- trace ---------------- *)

let trace_cmd_run seed crash full out chrome metrics =
  let scenario =
    if crash then Lnd_fuzz.Chaos.generate_crash seed
    else Lnd_fuzz.Chaos.generate seed
  in
  let keep = if full then None else Some Lnd_fuzz.Chaos.compact_keep in
  let outcome, tr = Lnd_fuzz.Chaos.run_traced ?keep scenario in
  (match out with
  | "-" -> print_string (Trace.to_jsonl tr)
  | file ->
      let oc = open_out file in
      output_string oc (Trace.to_jsonl tr);
      close_out oc;
      Printf.eprintf "trace: %d events -> %s\n" (Trace.size tr) file);
  (match chrome with
  | None -> ()
  | Some file ->
      let oc = open_out file in
      output_string oc (Trace.to_chrome tr);
      close_out oc;
      Printf.eprintf "chrome trace -> %s\n" file);
  if metrics then
    prerr_string (Metrics.dump (Metrics.of_events (Trace.events tr)));
  match outcome with
  | Ok r ->
      Printf.eprintf "ok   %s\n     %s\n"
        (Format.asprintf "%a" Lnd_fuzz.Chaos.pp_scenario scenario)
        (Format.asprintf "%a" Lnd_fuzz.Chaos.pp_report r)
  | Error msg ->
      Printf.eprintf "FAIL %s: %s\n"
        (Format.asprintf "%a" Lnd_fuzz.Chaos.pp_scenario scenario)
        msg;
      exit 1

let trace_cmd =
  let crash =
    Arg.(
      value & flag
      & info [ "crash" ]
          ~doc:"Replay a crash-restart scenario instead of a link-fault one.")
  in
  let full =
    Arg.(
      value & flag
      & info [ "full" ]
          ~doc:
            "Keep per-step events (fiber switches, shared-memory accesses) \
             instead of the compact protocol-level stream.")
  in
  let out =
    Arg.(
      value & opt string "-"
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write the JSONL trace to $(docv) ('-' = stdout).")
  in
  let chrome =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome" ] ~docv:"FILE"
          ~doc:
            "Also write a Chrome-trace JSON file (load in chrome://tracing \
             or Perfetto).")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Dump the trace-derived metrics registry to stderr.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Replay a chaos seed with the observability sink installed and \
          export its causal trace — deterministic JSONL (and optionally a \
          Chrome trace) plus trace-derived metrics; the run verdict goes to \
          stderr")
    Term.(
      const trace_cmd_run $ seed_arg $ crash $ full $ out $ chrome $ metrics)

(* ---------------- profile ---------------- *)

let profile_cmd_run seed proto_s backend_s out metrics_json =
  let proto =
    match Diff.proto_of_name proto_s with
    | Some p -> p
    | None ->
        pr "unknown protocol %S (sticky|verifiable|testorset)\n" proto_s;
        exit 2
  in
  let w = Diff.generate ~proto seed in
  (* The sim records everything (bounded and deterministic: the folded
     output is byte-identical across replays of the same seed); the
     domains backend records operation spans only — its spinning help
     daemons make the raw shared-memory event volume unbounded. *)
  let r, ti =
    match backend_s with
    | "sim" -> Diff.sim_traced ~keep:(fun _ -> true) w
    | "domains" -> Parallel.run_traced w
    | s ->
        pr "unknown backend %S (sim|domains)\n" s;
        exit 2
  in
  let evs = Trace.events ti.Diff.t_trace in
  let folded = Profile.to_folded evs in
  (match out with
  | "-" -> print_string folded
  | file ->
      let oc = open_out file in
      output_string oc folded;
      close_out oc;
      Printf.eprintf "folded stacks: %d rows -> %s\n"
        (List.length (Profile.stacks evs))
        file);
  (match metrics_json with
  | None -> ()
  | Some file ->
      let m = Metrics.of_events ~dropped:ti.Diff.t_dropped evs in
      let oc = open_out file in
      output_string oc (Metrics.to_json m);
      output_char oc '\n';
      close_out oc;
      Printf.eprintf "metrics snapshot -> %s\n" file);
  match r.Diff.verdict with
  | Ok () -> Printf.eprintf "ok   [%s] %s\n" backend_s (Diff.describe w)
  | Error msg ->
      Printf.eprintf "FAIL [%s] %s: %s\n" backend_s (Diff.describe w) msg;
      exit 1

let profile_cmd =
  let proto =
    Arg.(
      value & opt string "sticky"
      & info [ "proto" ] ~docv:"PROTO"
          ~doc:"Protocol to profile (sticky|verifiable|testorset).")
  in
  let backend =
    Arg.(
      value & opt string "sim"
      & info [ "backend" ] ~docv:"BACKEND"
          ~doc:
            "Driver to profile: the deterministic simulator ($(b,sim)) or \
             the OCaml 5 domains backend ($(b,domains)).")
  in
  let out =
    Arg.(
      value & opt string "-"
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write the folded stacks to $(docv) ('-' = stdout).")
  in
  let metrics_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-json" ] ~docv:"FILE"
          ~doc:
            "Also write the trace-derived metrics registry as a JSON \
             snapshot (deterministic, sorted keys).")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run a seed-derived register workload with the trace sink \
          installed and export flamegraph folded stacks — per-span self \
          time in logical steps, aggregated over the span tree (pipe into \
          flamegraph.pl or load in speedscope). On the sim backend the \
          output is byte-identical across replays of the same seed")
    Term.(
      const profile_cmd_run $ seed_arg $ proto $ backend $ out $ metrics_json)

(* ---------------- audit ---------------- *)

let audit_cmd_run seed count crash json strict =
  let audit_one seed =
    let scenario =
      if crash then Lnd_fuzz.Chaos.generate_crash seed
      else Lnd_fuzz.Chaos.generate seed
    in
    let outcome, _tr, report =
      Lnd_fuzz.Chaos.run_audited ~keep:Lnd_fuzz.Chaos.compact_keep scenario
    in
    let accused = Audit.accused report in
    let detectable = Lnd_fuzz.Chaos.detectable scenario in
    let byz = Lnd_fuzz.Chaos.byzantine_pids scenario in
    let false_blame = List.filter (fun p -> not (List.mem p byz)) accused in
    let missed = List.filter (fun p -> not (List.mem p accused)) detectable in
    if json then
      pr "{\"seed\":%d,\"crash\":%b,\"adversary\":\"%s\",\"detectable\":[%s],\
          \"false_blame\":[%s],\"missed\":[%s],\"report\":%s}\n"
        seed crash
        (Lnd_fuzz.Chaos.adversary_name scenario.Lnd_fuzz.Chaos.adversary)
        (String.concat "," (List.map string_of_int detectable))
        (String.concat "," (List.map string_of_int false_blame))
        (String.concat "," (List.map string_of_int missed))
        (Audit.report_to_json report)
    else begin
      pr "%s %s\n"
        (match outcome with Ok _ -> "ok  " | Error _ -> "FAIL")
        (Format.asprintf "%a" Lnd_fuzz.Chaos.pp_scenario scenario);
      pr "     %s\n" (Format.asprintf "%a" Audit.pp_report report)
    end;
    (outcome, false_blame, missed)
  in
  let failures = ref 0 in
  for s = seed to seed + count - 1 do
    let outcome, false_blame, missed = audit_one s in
    let bad =
      (match outcome with Ok _ -> false | Error _ -> true)
      || false_blame <> [] || missed <> []
    in
    if bad then begin
      incr failures;
      Printf.eprintf "AUDIT FAIL seed=%d%s: run=%s false_blame=[%s] \
                      missed=[%s]\n"
        s
        (if crash then " --crash" else "")
        (match outcome with Ok _ -> "ok" | Error e -> e)
        (String.concat "," (List.map string_of_int false_blame))
        (String.concat "," (List.map string_of_int missed))
    end
  done;
  if strict && !failures > 0 then exit 1

let audit_cmd =
  let count =
    Arg.(
      value & opt int 1
      & info [ "count" ] ~docv:"N"
          ~doc:"Audit $(docv) consecutive seeds starting at --seed.")
  in
  let crash =
    Arg.(
      value & flag
      & info [ "crash" ]
          ~doc:"Audit crash-restart scenarios instead of link-fault ones.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit one JSON object per seed (scenario, ground truth, blame \
             report) instead of the human-readable summary.")
  in
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:
            "Exit non-zero if any seed fails its run, accuses a correct \
             process (false blame) or misses a detectable Byzantine pid.")
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:
         "Replay chaos seeds with the accountability auditor fanned out \
          next to the trace sink and print the blame report: every \
          detectable Byzantine pid must be attributed, and no correct \
          process may ever be accused")
    Term.(const audit_cmd_run $ seed_arg $ count $ crash $ json $ strict)

(* ---------------- sweep ---------------- *)

let sweep_cmd_run register =
  let sweep = [ (4, 1); (7, 2); (10, 3); (13, 4) ] in
  (match register with
  | "verifiable" ->
      pr "%4s %4s | %10s | %10s\n" "n" "f" "verify rds" "rounds";
      List.iter
        (fun (n, f) ->
          let sys = Verifiable_system.make ~n ~f () in
          ignore
            (Verifiable_system.client sys ~pid:0 ~name:"w" (fun () ->
                 Verifiable_system.op_write sys "v";
                 ignore (Verifiable_system.op_sign sys "v")));
          run_to_quiescence sys.sched ~max_steps:8_000_000;
          let before = Space.stats_of_pid sys.space 1 in
          ignore
            (Verifiable_system.client sys ~pid:1 ~name:"v" (fun () ->
                 ignore (Verifiable_system.op_verify sys ~pid:1 "v")));
          run_to_quiescence sys.sched ~max_steps:8_000_000;
          let after = Space.stats_of_pid sys.space 1 in
          pr "%4d %4d | %10d | %10d\n" n f
            (after.Space.reads - before.Space.reads)
            (after.Space.writes - before.Space.writes))
        sweep
  | _ ->
      pr "%4s %4s | %10s | %10s\n" "n" "f" "write rds" "read rds";
      List.iter
        (fun (n, f) ->
          let sys = Sticky_system.make ~n ~f () in
          let b0 = Space.stats_of_pid sys.space 0 in
          ignore
            (Sticky_system.client sys ~pid:0 ~name:"w" (fun () ->
                 Sticky_system.op_write sys "v"));
          run_to_quiescence sys.sched ~max_steps:8_000_000;
          let a0 = Space.stats_of_pid sys.space 0 in
          let b1 = Space.stats_of_pid sys.space 1 in
          ignore
            (Sticky_system.client sys ~pid:1 ~name:"r" (fun () ->
                 ignore (Sticky_system.op_read sys ~pid:1)));
          run_to_quiescence sys.sched ~max_steps:8_000_000;
          let a1 = Space.stats_of_pid sys.space 1 in
          pr "%4d %4d | %10d | %10d\n" n f
            (a0.Space.reads - b0.Space.reads)
            (a1.Space.reads - b1.Space.reads))
        sweep);
  pr "(full tables: dune exec bench/main.exe)\n"

let sweep_cmd =
  let register =
    Arg.(
      value
      & opt (enum [ ("verifiable", "verifiable"); ("sticky", "sticky") ])
          "verifiable"
      & info [ "register" ] ~docv:"REG" ~doc:"verifiable or sticky.")
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Print operation-cost rows across system sizes")
    Term.(const sweep_cmd_run $ register)

(* ---------------- explore / synth / scenario ---------------- *)

let model_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("sticky", Mcheck.Sticky);
             ("verifiable", Mcheck.Verifiable);
             ("testorset", Mcheck.Testorset);
           ])
        Mcheck.Sticky
    & info [ "model" ] ~docv:"MODEL"
        ~doc:"Register model: sticky, verifiable or testorset.")

let save_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "save" ] ~docv:"FILE"
        ~doc:"Serialise a found violation as an lnd-scenario file.")

let save_scenario cfg cx = function
  | None -> ()
  | Some path ->
      let name = Filename.remove_extension (Filename.basename path) in
      Scenario.save path (Scenario.of_violation ~name cfg cx);
      pr "scenario saved to %s\n" path

let explore_cmd_run model weakened mode max_steps max_runs preempts strict save
    =
  let cfg =
    if weakened then Mcheck.weakened
    else { Mcheck.default with Mcheck.model }
  in
  pr "exploring %s (mode=%s preempts=%d max-steps=%d)\n" (Mcheck.note cfg)
    (match mode with `Dpor -> "dpor" | `Naive -> "naive")
    preempts max_steps;
  match
    Mcheck.explore ~mode ~max_steps ~max_runs ~max_preempts:preempts cfg
  with
  | r ->
      pr "runs=%d pruned=%d blocked=%d races=%d exhausted=%b max-depth=%d\n"
        r.Explore.runs r.Explore.pruned r.Explore.blocked r.Explore.races
        r.Explore.exhausted r.Explore.max_depth;
      if strict && not r.Explore.exhausted then exit 2
  | exception Explore.Violation cx ->
      pr "%s\n" (Format.asprintf "%a" Explore.pp_counterexample cx);
      save_scenario cfg cx save;
      exit 3

let explore_cmd =
  let weakened =
    Arg.(
      value & flag
      & info [ "weakened" ]
          ~doc:
            "Explore the deliberately weakened configuration (two actual \
             colluders against f=1 quorums) instead of the clean default.")
  in
  let mode =
    Arg.(
      value
      & opt (enum [ ("dpor", `Dpor); ("naive", `Naive) ]) `Dpor
      & info [ "mode" ] ~docv:"MODE" ~doc:"dpor or naive (baseline DFS).")
  in
  let max_steps =
    Arg.(
      value & opt int 600
      & info [ "max-steps" ] ~docv:"STEPS" ~doc:"Per-run step budget.")
  in
  let max_runs =
    Arg.(
      value & opt int 200_000
      & info [ "max-runs" ] ~docv:"RUNS" ~doc:"Total schedule budget.")
  in
  let preempts =
    Arg.(
      value & opt int 0
      & info [ "preempts" ] ~docv:"P"
          ~doc:"CHESS-style preemption bound (involuntary switches per run).")
  in
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:"Exit non-zero unless the bounded space was exhausted.")
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Model-check a paper configuration: DPOR over every schedule of \
          at most STEPS steps and P preemptions, checking monitors, \
          stickiness, Byzantine linearizability and blame soundness at \
          quiescence")
    Term.(
      const explore_cmd_run $ model_arg $ weakened $ mode $ max_steps
      $ max_runs $ preempts $ strict $ save_arg)

let synth_cmd_run seed rounds batch scname from_honest save =
  let base =
    if from_honest then
      { Mcheck.weakened with Mcheck.scripts = [ (2, [ 2; 2 ]); (3, [ 2; 2 ]) ] }
    else Mcheck.weakened
  in
  pr "synthesising against %s\n" (Mcheck.note base);
  let o = Synth.hillclimb ~rounds ~batch ~seed ~name:scname base in
  pr "evals=%d rounds=%d best-fitness=%d\n" o.Synth.evals o.Synth.rounds_used
    o.Synth.best_fitness;
  match o.Synth.found with
  | None ->
      pr "no violating adversary found\n";
      exit 1
  | Some sc ->
      pr "violating scenario:\n%s" (Scenario.to_string sc);
      (match save with
      | None -> ()
      | Some path ->
          Scenario.save path sc;
          pr "scenario saved to %s\n" path)

let synth_cmd =
  let rounds =
    Arg.(
      value & opt int 50
      & info [ "rounds" ] ~docv:"R" ~doc:"Hill-climbing rounds.")
  in
  let batch =
    Arg.(
      value & opt int 6
      & info [ "batch" ] ~docv:"B" ~doc:"Schedule seeds per candidate.")
  in
  let scname =
    Arg.(
      value & opt string "synthesised"
      & info [ "name" ] ~docv:"NAME" ~doc:"Name of the emitted scenario.")
  in
  let from_honest =
    Arg.(
      value & flag
      & info [ "from-honest" ]
          ~doc:
            "Start from all-honest scripts, so the search must mutate the \
             adversary itself (not just the schedule) to violate.")
  in
  Cmd.v
    (Cmd.info "synth"
       ~doc:
         "Search the joint schedule × Byzantine-script space of the \
          weakened configuration for a property violation, and serialise \
          it as a replayable scenario")
    Term.(
      const synth_cmd_run $ seed_arg $ rounds $ batch $ scname $ from_honest
      $ save_arg)

let scenario_cmd_run files =
  let failed = ref 0 in
  List.iter
    (fun file ->
      match Scenario.load file with
      | Error e ->
          incr failed;
          pr "%-40s PARSE ERROR %s\n" file e
      | Ok sc -> (
          match Scenario.run sc with
          | Ok () -> pr "%-40s OK (%s)\n" file sc.Scenario.sc_name
          | Error e ->
              incr failed;
              pr "%-40s FAIL %s\n" file e))
    files;
  if !failed > 0 then exit 1

let scenario_cmd =
  let files =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE")
  in
  Cmd.v
    (Cmd.info "scenario"
       ~doc:
         "Re-execute serialised lnd-scenario files and check each still \
          meets its recorded expectation (violation or pass)")
    Term.(const scenario_cmd_run $ files)

let diff_cmd_run write_golden check_golden seeds from proto_s backend_s traced
    trace_out =
  let protos =
    match proto_s with
    | None -> Diff.all_protos
    | Some s -> (
        match Diff.proto_of_name s with
        | Some p -> [ p ]
        | None ->
            pr "unknown protocol %S (sticky|verifiable|testorset)\n" s;
            exit 2)
  in
  match (write_golden, check_golden) with
  | Some path, _ ->
      Diff.write_golden path;
      pr "wrote %d golden sim lines to %s\n"
        (Diff.golden_seed_count * List.length Diff.all_protos)
        path
  | None, Some path -> (
      match Diff.check_golden path with
      | [] ->
          pr "golden sim baselines OK (%d lines byte-identical)\n"
            (Diff.golden_seed_count * List.length Diff.all_protos)
      | mismatches ->
          List.iter
            (fun (i, e, g) ->
              pr "line %d MISMATCH\n  expected: %s\n  got:      %s\n" i e g)
            mismatches;
          exit 1)
  | None, None ->
      let traced = traced || trace_out <> None in
      let backends =
        match backend_s with
        | "sim" -> [ "sim" ]
        | "domains" -> [ "domains" ]
        | "both" -> [ "sim"; "domains" ]
        | s ->
            pr "unknown backend %S (sim|domains|both)\n" s;
            exit 2
      in
      let exec bname w =
        match (bname, traced) with
        | "sim", false -> (Diff.sim w, None)
        | "sim", true ->
            let r, ti = Diff.sim_traced w in
            (r, Some ti)
        | _, false -> (Parallel.run w, None)
        | _, true ->
            let r, ti = Parallel.run_traced w in
            (r, Some ti)
      in
      let failed = ref 0 in
      for seed = from to from + seeds - 1 do
        List.iter
          (fun proto ->
            let w = Diff.generate ~proto seed in
            List.iter
              (fun bname ->
                let r, ti = exec bname w in
                (match r.Diff.verdict with
                | Ok () ->
                    pr "ok   [%s] %s ops=%d steps=%d\n" bname (Diff.describe w)
                      r.Diff.ops r.Diff.steps
                | Error m ->
                    incr failed;
                    pr "FAIL [%s] %s: %s\n" bname (Diff.describe w) m);
                match ti with
                | None -> ()
                | Some ti ->
                    (* The trace-parity axis: the merged trace must be
                       complete, well-nested, and fold — through
                       Trace_replay — to the same number of operations
                       and an accepted history whenever the direct one
                       was accepted. *)
                    let problems =
                      (match ti.Diff.t_nesting with
                      | Some m -> [ "ill-nested: " ^ m ]
                      | None -> [])
                      @ (if ti.Diff.t_dropped > 0 then
                           [ Printf.sprintf "dropped=%d" ti.Diff.t_dropped ]
                         else [])
                      @ (if ti.Diff.t_ops <> r.Diff.ops then
                           [
                             Printf.sprintf "trace ops=%d direct ops=%d"
                               ti.Diff.t_ops r.Diff.ops;
                           ]
                         else [])
                      @
                      match (r.Diff.verdict, ti.Diff.t_verdict) with
                      | Ok (), Error m -> [ "trace verdict: " ^ m ]
                      | _ -> []
                    in
                    (match problems with
                    | [] ->
                        pr "     trace[%s] events=%d ops=%d well-nested\n"
                          bname ti.Diff.t_events ti.Diff.t_ops
                    | ps ->
                        incr failed;
                        pr "FAIL trace[%s] %s: %s\n" bname (Diff.describe w)
                          (String.concat "; " ps));
                    match trace_out with
                    | None -> ()
                    | Some dir ->
                        let file =
                          Filename.concat dir
                            (Printf.sprintf "diff_%s_seed%d_%s.jsonl"
                               (Diff.proto_name proto) seed bname)
                        in
                        let oc = open_out file in
                        output_string oc (Trace.to_jsonl ti.Diff.t_trace);
                        close_out oc)
              backends)
          protos
      done;
      if !failed > 0 then exit 1

let diff_cmd =
  let write_golden =
    Arg.(
      value
      & opt (some string) None
      & info [ "write-golden" ] ~docv:"FILE"
          ~doc:
            "Regenerate the committed sim-driver golden baselines (one \
             canonical history line per (seed, protocol)) and exit.")
  in
  let check_golden =
    Arg.(
      value
      & opt (some file) None
      & info [ "check-golden" ] ~docv:"FILE"
          ~doc:
            "Re-run the golden workloads on the sim driver and fail unless \
             every line is byte-identical to $(docv).")
  in
  let seeds =
    Arg.(
      value & opt int 10
      & info [ "seeds" ] ~docv:"N" ~doc:"How many seeds to sweep.")
  in
  let from =
    Arg.(
      value & opt int 1 & info [ "from" ] ~docv:"SEED" ~doc:"First seed.")
  in
  let proto =
    Arg.(
      value
      & opt (some string) None
      & info [ "proto" ] ~docv:"PROTO"
          ~doc:"Restrict to one protocol (sticky|verifiable|testorset).")
  in
  let backend =
    Arg.(
      value & opt string "sim"
      & info [ "backend" ] ~docv:"BACKEND"
          ~doc:
            "Which driver(s) to sweep: the deterministic simulator ($(b,sim)), \
             the OCaml 5 domains backend ($(b,domains)), or $(b,both).")
  in
  let traced =
    Arg.(
      value & flag
      & info [ "traced" ]
          ~doc:
            "Record each run through the per-domain arena sink and check \
             trace parity: the merged trace must be complete and \
             well-nested, and fold (via Trace_replay) to the same op count \
             and an accepted history whenever the direct history was \
             accepted.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some dir) None
      & info [ "trace-out" ] ~docv:"DIR"
          ~doc:
            "Write each merged trace to \
             $(docv)/diff_<proto>_seed<N>_<backend>.jsonl (implies \
             $(b,--traced)).")
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Differential conformance: run seed-derived workloads on the \
          deterministic simulator and/or the OCaml 5 domains backend (and \
          check the sim against the committed golden baselines)")
    Term.(
      const diff_cmd_run $ write_golden $ check_golden $ seeds $ from $ proto
      $ backend $ traced $ trace_out)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "lnd_cli" ~version:"1.0.0"
             ~doc:
               "Simulate SWMR verifiable and sticky registers in systems \
                with Byzantine processes (Hu & Toueg, PODC 2025)")
          [
            verify_cmd; sticky_cmd; impossibility_cmd; sweep_cmd; fuzz_cmd;
            chaos_cmd; trace_cmd; profile_cmd; audit_cmd; explore_cmd;
            synth_cmd; scenario_cmd; diff_cmd;
          ]))
